// Package datagen generates the synthetic datasets the evaluation needs.
// The paper evaluates on TPC-DS (scale factors 40–1000), the UCI Combined
// Cycle Power Plant (CCPP) set, the UCI Beijing PM2.5 set, and a synthetic
// Zipf-joined pair of tables (Appendix C). None of those are shippable in an
// offline reproduction, so this package builds statistically-shaped
// equivalents: the same columns, the same kinds of inter-column
// relationships (correlated prices/costs, nonlinear sensor responses,
// Zipf-skewed join keys), so the model-training and query-evaluation code
// paths are exercised identically. See DESIGN.md §2 for the substitution
// rationale.
package datagen

import (
	"math"
	"math/rand"

	"dbest/internal/table"
)

// StoreSalesOptions sizes the TPC-DS-like fact/dimension pair.
type StoreSalesOptions struct {
	Rows   int   // fact-table rows; default 1e6
	Stores int   // distinct ss_store_sk values; default 57 (paper §4.6)
	Days   int   // distinct ss_sold_date_sk values; default 1823 (5 years)
	Seed   int64 // RNG seed
}

func (o *StoreSalesOptions) withDefaults() StoreSalesOptions {
	out := StoreSalesOptions{Rows: 1_000_000, Stores: 57, Days: 1823}
	if o == nil {
		return out
	}
	if o.Rows > 0 {
		out.Rows = o.Rows
	}
	if o.Stores > 0 {
		out.Stores = o.Stores
	}
	if o.Days > 0 {
		out.Days = o.Days
	}
	out.Seed = o.Seed
	return out
}

// StoreSales generates a TPC-DS-shaped store_sales fact table with the
// column pairs the paper queries:
//
//	ss_sold_date_sk   int   — ordinal date surrogate key
//	ss_store_sk       int   — store key (GROUP BY attribute, 57 values)
//	ss_quantity       float — 1..100
//	ss_wholesale_cost float — lognormal-ish cost
//	ss_list_price     float — cost × markup (correlated with cost)
//	ss_sales_price    float — list price × discount factor
//	ss_ext_discount_amt float — extended discount
//	ss_net_profit     float — sales − cost ± noise (can be negative)
//
// Stores have different sales-volume weights (Zipf-ish) so GROUP BY groups
// are realistically non-uniform.
func StoreSales(opts *StoreSalesOptions) *table.Table {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + 11))

	// Per-store volume weights and per-store price level multipliers give
	// each group its own distribution — what per-group models must learn.
	weights := make([]float64, o.Stores)
	level := make([]float64, o.Stores)
	var wsum float64
	for s := range weights {
		weights[s] = 1 / math.Pow(float64(s+1), 0.6)
		wsum += weights[s]
		level[s] = 0.8 + 0.4*rng.Float64()
	}
	cum := make([]float64, o.Stores)
	acc := 0.0
	for s := range weights {
		acc += weights[s] / wsum
		cum[s] = acc
	}
	pickStore := func(u float64) int64 {
		lo, hi := 0, o.Stores-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}

	n := o.Rows
	date := make([]int64, n)
	store := make([]int64, n)
	qty := make([]float64, n)
	cost := make([]float64, n)
	list := make([]float64, n)
	sales := make([]float64, n)
	disc := make([]float64, n)
	profit := make([]float64, n)
	channel := make([]string, n)
	// Sales channels are the nominal categorical attribute (§2.3): each
	// channel discounts differently, so per-channel models must differ.
	channels := []struct {
		name           string
		weight, discLo float64
		discHi         float64
	}{
		{"store", 0.62, 0.82, 1.00},
		{"web", 0.28, 0.70, 0.95},
		{"catalog", 0.10, 0.75, 0.90},
	}
	for i := 0; i < n; i++ {
		// Dates have a mild seasonal sinusoid in volume; use rejection-free
		// warping of a uniform draw.
		d := rng.Float64()
		d = d + 0.08*math.Sin(4*math.Pi*d)/(4*math.Pi)
		date[i] = int64(d * float64(o.Days))
		s := pickStore(rng.Float64())
		store[i] = s
		qty[i] = 1 + math.Floor(100*math.Pow(rng.Float64(), 1.6))
		// Bounded, mildly skewed cost (TPC-DS draws ss_wholesale_cost
		// roughly uniformly in [1, 100]); per-store price level shifts it.
		c := (1 + 99*math.Pow(rng.Float64(), 1.15)) * level[s]
		cost[i] = round2(c)
		// Markup varies slowly and smoothly with the cost level plus small
		// noise, keeping list price a tight, learnable, monotone function
		// of cost with a smooth density — the properties that make
		// [ss_list_price, ss_wholesale_cost] the paper's sensitivity pair.
		markup := 1.35 + 0.1*math.Sin(c/40) + 0.02*rng.NormFloat64()
		if markup < 1.05 {
			markup = 1.05
		}
		list[i] = round2(c * markup)
		u := rng.Float64()
		ch := channels[0]
		for _, cand := range channels {
			if u < cand.weight {
				ch = cand
				break
			}
			u -= cand.weight
		}
		channel[i] = ch.name
		discount := ch.discLo + (ch.discHi-ch.discLo)*rng.Float64()
		sales[i] = round2(list[i] * discount)
		disc[i] = round2(list[i] * (1 - discount) * qty[i])
		profit[i] = round2((sales[i]-cost[i])*qty[i] + rng.NormFloat64()*3)
	}

	tb := table.New("store_sales")
	tb.AddIntColumn("ss_sold_date_sk", date)
	tb.AddIntColumn("ss_store_sk", store)
	tb.AddFloatColumn("ss_quantity", qty)
	tb.AddFloatColumn("ss_wholesale_cost", cost)
	tb.AddFloatColumn("ss_list_price", list)
	tb.AddFloatColumn("ss_sales_price", sales)
	tb.AddFloatColumn("ss_ext_discount_amt", disc)
	tb.AddFloatColumn("ss_net_profit", profit)
	tb.AddStringColumn("ss_channel", channel)
	return tb
}

// Store generates the TPC-DS-shaped store dimension table (one row per
// store) used by the join experiments (§4.8): s_store_sk joins
// ss_store_sk; s_number_of_employees is the dimension attribute the paper
// ranges over.
func Store(stores int, seed int64) *table.Table {
	if stores <= 0 {
		stores = 57
	}
	rng := rand.New(rand.NewSource(seed + 13))
	sk := make([]int64, stores)
	emp := make([]int64, stores)
	floor := make([]float64, stores)
	for i := 0; i < stores; i++ {
		sk[i] = int64(i)
		emp[i] = int64(200 + rng.Intn(100)) // TPC-DS range 200..300
		floor[i] = float64(5000000 + rng.Intn(5000000))
	}
	tb := table.New("store")
	tb.AddIntColumn("s_store_sk", sk)
	tb.AddIntColumn("s_number_of_employees", emp)
	tb.AddFloatColumn("s_floor_space", floor)
	return tb
}

// CCPP generates the Combined Cycle Power Plant dataset shape (Tüfekci
// 2014): Temperature (T), Exhaust Vacuum (V), Ambient Pressure (AP),
// Relative Humidity (RH) and the net energy output (EP ≈ 420–495 MW) which
// responds strongly and negatively to T — the relationship the paper's
// [T, EP] regression models learn. rows defaults to 9568 (the real set) and
// may be scaled up like the paper does (§4.1.2).
func CCPP(rows int, seed int64) *table.Table {
	if rows <= 0 {
		rows = 9568
	}
	rng := rand.New(rand.NewSource(seed + 17))
	T := make([]float64, rows)
	V := make([]float64, rows)
	AP := make([]float64, rows)
	RH := make([]float64, rows)
	EP := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := 1.81 + rng.Float64()*35.3 // 1.81..37.11 °C
		v := 25.36 + (t-1.81)/35.3*40 + rng.NormFloat64()*5
		v = clamp(v, 25.36, 81.56)
		ap := 992.89 + rng.NormFloat64()*5.94
		ap = clamp(ap, 992.89-3*5.94, 992.89+3*5.94)
		rh := 73.3 - 0.5*(t-20) + rng.NormFloat64()*10
		rh = clamp(rh, 25.56, 100.16)
		// EP: dominated by a negative linear response to T with mild
		// curvature and small contributions from V, AP, RH (mirrors the
		// published regression studies on this dataset).
		ep := 497.0 - 1.75*t - 0.009*t*t - 0.18*(v-54) + 0.06*(ap-1013) - 0.04*(rh-73) + rng.NormFloat64()*3.5
		T[i], V[i], AP[i], RH[i], EP[i] = round2(t), round2(v), round2(ap), round2(rh), round2(ep)
	}
	tb := table.New("ccpp")
	tb.AddFloatColumn("T", T)
	tb.AddFloatColumn("V", V)
	tb.AddFloatColumn("AP", AP)
	tb.AddFloatColumn("RH", RH)
	tb.AddFloatColumn("EP", EP)
	return tb
}

// Beijing generates the Beijing PM2.5 dataset shape (Liang et al. 2015):
// Dew Point (DEWP), Pressure (PRES), Temperature (TEMP), cumulated wind
// speed (IWS), and the PM2.5 level. PM2.5 is nonlinear and heteroscedastic
// in the predictors: high with high humidity/low wind, low with strong
// northerly wind — the qualitative structure the paper's models must learn.
// rows defaults to 43824 (the real set size).
func Beijing(rows int, seed int64) *table.Table {
	if rows <= 0 {
		rows = 43824
	}
	rng := rand.New(rand.NewSource(seed + 19))
	dewp := make([]float64, rows)
	pres := make([]float64, rows)
	temp := make([]float64, rows)
	iws := make([]float64, rows)
	pm := make([]float64, rows)
	for i := 0; i < rows; i++ {
		// Seasonal driver in [0, 2π).
		season := 2 * math.Pi * float64(i%8760) / 8760
		t := 12 - 14*math.Cos(season) + rng.NormFloat64()*4
		dp := t - 5 - rng.Float64()*12
		p := 1016 + 10*math.Cos(season) + rng.NormFloat64()*4
		w := math.Exp(rng.NormFloat64()*1.1 + 1.2) // lognormal wind, median ≈ 3.3
		humidityProxy := math.Max(0, 12-(t-dp))    // small dew-point gap → humid
		base := 18 + 14*humidityProxy + 90/(1+w/8) - 1.3*t
		level := math.Max(2, base*math.Exp(rng.NormFloat64()*0.55))
		dewp[i] = round2(dp)
		pres[i] = round2(p)
		temp[i] = round2(t)
		iws[i] = round2(w)
		pm[i] = round2(level)
	}
	tb := table.New("beijing")
	tb.AddFloatColumn("DEWP", dewp)
	tb.AddFloatColumn("PRES", pres)
	tb.AddFloatColumn("TEMP", temp)
	tb.AddFloatColumn("IWS", iws)
	tb.AddFloatColumn("PM25", pm)
	return tb
}

// ScaleUp resamples tb to rows rows with per-column multiplicative jitter,
// the way the paper scales the 9 568-row CCPP set to billions: rows are
// drawn with replacement and numeric values are perturbed by a small
// relative noise so the scaled table is not a pure replication.
func ScaleUp(tb *table.Table, rows int, jitter float64, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed + 23))
	n := tb.NumRows()
	out := table.New(tb.Name)
	idx := make([]int, rows)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	for _, c := range tb.Columns {
		nc := out.AddColumn(c.Name, c.Type)
		switch c.Type {
		case table.Float64:
			nc.Floats = make([]float64, rows)
			for j, i := range idx {
				nc.Floats[j] = c.Floats[i] * (1 + jitter*(2*rng.Float64()-1))
			}
		case table.Int64:
			nc.Ints = make([]int64, rows)
			for j, i := range idx {
				nc.Ints[j] = c.Ints[i]
			}
		case table.String:
			nc.Strings = make([]string, rows)
			for j, i := range idx {
				nc.Strings[j] = c.Strings[i]
			}
		}
	}
	return out
}

// Zipf draws n samples from a Zipf distribution over ranks 1..max with
// parameter s ≥ 1 — the join-attribute distribution of Appendix C
// (p(k) = k^−s / ζ(s)).
func Zipf(n int, s float64, max uint64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed + 29))
	z := rand.NewZipf(rng, s, 1, max-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64()) + 1 // ranks 1..max
	}
	return out
}

// ZipfJoinPair builds the Appendix C tables A(x, y) and B(z, y): the join
// attribute y of B follows Zipf(s) over 1..maxKey (a heavily skewed region)
// for half the rows and Uniform(maxKey+1 .. 2·maxKey) (a non-skewed region)
// for the other half. A holds one row per key with measure x; B's measure z
// depends weakly on y plus noise.
func ZipfJoinPair(aRows, bRows int, s float64, maxKey uint64, seed int64) (a, b *table.Table) {
	rng := rand.New(rand.NewSource(seed + 31))

	a = table.New("A")
	ay := make([]int64, aRows)
	ax := make([]float64, aRows)
	for i := 0; i < aRows; i++ {
		ay[i] = int64(i%int(2*maxKey)) + 1
		ax[i] = round2(rng.Float64() * 100)
	}
	a.AddIntColumn("y", ay)
	a.AddFloatColumn("x", ax)

	b = table.New("B")
	by := make([]int64, bRows)
	bz := make([]float64, bRows)
	half := bRows / 2
	skewed := Zipf(half, s, maxKey, seed)
	copy(by, skewed)
	for i := half; i < bRows; i++ {
		by[i] = int64(maxKey) + 1 + rng.Int63n(int64(maxKey))
	}
	for i := 0; i < bRows; i++ {
		bz[i] = round2(50 + 0.02*float64(by[i]) + rng.NormFloat64()*8)
	}
	b.AddIntColumn("y", by)
	b.AddFloatColumn("z", bz)
	return a, b
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
