package datagen

import (
	"math"
	"testing"

	"dbest/internal/table"
)

func corr(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cxy, cx, cy float64
	for i := range x {
		cxy += (x[i] - mx) * (y[i] - my)
		cx += (x[i] - mx) * (x[i] - mx)
		cy += (y[i] - my) * (y[i] - my)
	}
	return cxy / math.Sqrt(cx*cy)
}

func TestStoreSalesSchema(t *testing.T) {
	tb := StoreSales(&StoreSalesOptions{Rows: 10000, Seed: 1})
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 10000 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for _, col := range []string{
		"ss_sold_date_sk", "ss_store_sk", "ss_quantity", "ss_wholesale_cost",
		"ss_list_price", "ss_sales_price", "ss_ext_discount_amt", "ss_net_profit",
	} {
		if !tb.HasColumn(col) {
			t.Fatalf("missing column %s", col)
		}
	}
}

func TestStoreSalesInvariants(t *testing.T) {
	tb := StoreSales(&StoreSalesOptions{Rows: 20000, Stores: 57, Seed: 2})
	stores, err := tb.DistinctInts("ss_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	if len(stores) != 57 {
		t.Fatalf("distinct stores = %d, want 57", len(stores))
	}
	cost := tb.Column("ss_wholesale_cost").Floats
	list := tb.Column("ss_list_price").Floats
	sales := tb.Column("ss_sales_price").Floats
	for i := range cost {
		if cost[i] <= 0 {
			t.Fatalf("row %d: nonpositive cost %v", i, cost[i])
		}
		if list[i] < cost[i] {
			t.Fatalf("row %d: list %v < cost %v", i, list[i], cost[i])
		}
		if sales[i] > list[i]+1e-9 {
			t.Fatalf("row %d: sales %v > list %v", i, sales[i], list[i])
		}
	}
	// The paper's regression pair [ss_list_price, ss_wholesale_cost] only
	// works because the two are strongly correlated.
	if c := corr(list, cost); c < 0.7 {
		t.Fatalf("corr(list, cost) = %v, want > 0.7", c)
	}
}

func TestStoreSalesGroupSkew(t *testing.T) {
	tb := StoreSales(&StoreSalesOptions{Rows: 50000, Stores: 57, Seed: 3})
	counts := map[int64]int{}
	for _, s := range tb.Column("ss_store_sk").Ints {
		counts[s]++
	}
	if counts[0] <= counts[56] {
		t.Fatal("store volumes should be skewed (store 0 most popular)")
	}
}

func TestStoreDimension(t *testing.T) {
	tb := Store(57, 1)
	if tb.NumRows() != 57 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	emp := tb.Column("s_number_of_employees").Ints
	for _, e := range emp {
		if e < 200 || e > 300 {
			t.Fatalf("employees %d outside TPC-DS range", e)
		}
	}
	if got := Store(0, 1).NumRows(); got != 57 {
		t.Fatalf("default stores = %d, want 57", got)
	}
}

func TestCCPPShape(t *testing.T) {
	tb := CCPP(0, 1)
	if tb.NumRows() != 9568 {
		t.Fatalf("default rows = %d, want 9568", tb.NumRows())
	}
	T := tb.Column("T").Floats
	EP := tb.Column("EP").Floats
	// The defining property: strong negative T↔EP correlation.
	if c := corr(T, EP); c > -0.85 {
		t.Fatalf("corr(T, EP) = %v, want < -0.85", c)
	}
	for i := range EP {
		if EP[i] < 380 || EP[i] > 520 {
			t.Fatalf("EP[%d] = %v outside plausible MW range", i, EP[i])
		}
	}
}

func TestBeijingShape(t *testing.T) {
	tb := Beijing(20000, 1)
	if tb.NumRows() != 20000 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	pm := tb.Column("PM25").Floats
	iws := tb.Column("IWS").Floats
	for i := range pm {
		if pm[i] <= 0 {
			t.Fatalf("PM25[%d] = %v, must be positive", i, pm[i])
		}
	}
	// Wind disperses pollution: negative rank relationship.
	if c := corr(iws, pm); c > -0.05 {
		t.Fatalf("corr(IWS, PM25) = %v, want clearly negative", c)
	}
	if got := Beijing(0, 1).NumRows(); got != 43824 {
		t.Fatalf("default rows = %d, want 43824", got)
	}
}

func TestScaleUp(t *testing.T) {
	base := CCPP(1000, 1)
	up := ScaleUp(base, 5000, 0.01, 2)
	if up.NumRows() != 5000 {
		t.Fatalf("rows = %d", up.NumRows())
	}
	// Means should be preserved within a few percent.
	b, _ := base.Floats("EP")
	u, _ := up.Floats("EP")
	mb, mu := mean(b), mean(u)
	if math.Abs(mb-mu)/mb > 0.02 {
		t.Fatalf("mean drifted: %v → %v", mb, mu)
	}
	// Int columns survive untouched.
	it := table.New("t")
	it.AddIntColumn("k", []int64{5, 5, 5})
	it.AddStringColumn("s", []string{"a", "b", "c"})
	up2 := ScaleUp(it, 10, 0.5, 3)
	for _, v := range up2.Column("k").Ints {
		if v != 5 {
			t.Fatalf("int column perturbed: %d", v)
		}
	}
	if len(up2.Column("s").Strings) != 10 {
		t.Fatal("string column not scaled")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestZipfSkew(t *testing.T) {
	xs := Zipf(50000, 2, 1000, 1)
	counts := map[int64]int{}
	for _, v := range xs {
		if v < 1 || v > 1000 {
			t.Fatalf("rank %d out of range", v)
		}
		counts[v]++
	}
	// Rank 1 should dominate: p(1)/p(2) = 2^s = 4.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("p(1)/p(2) = %v, want ≈ 4", ratio)
	}
}

func TestZipfJoinPair(t *testing.T) {
	a, b := ZipfJoinPair(2000, 100000, 2, 1000, 1)
	if a.NumRows() != 2000 || b.NumRows() != 100000 {
		t.Fatalf("rows = %d, %d", a.NumRows(), b.NumRows())
	}
	// Region split: half of B's keys in 1..1000 (skewed), half in 1001..2000.
	var low, high int
	for _, v := range b.Column("y").Ints {
		switch {
		case v >= 1 && v <= 1000:
			low++
		case v >= 1001 && v <= 2000:
			high++
		default:
			t.Fatalf("key %d outside regions", v)
		}
	}
	if low != high {
		t.Fatalf("regions unbalanced: %d vs %d", low, high)
	}
	// Skewed region concentration: top key should hold a large share.
	counts := map[int64]int{}
	for _, v := range b.Column("y").Ints {
		if v <= 1000 {
			counts[v]++
		}
	}
	if float64(counts[1])/float64(low) < 0.3 {
		t.Fatalf("rank-1 share = %v, want > 0.3 for s=2", float64(counts[1])/float64(low))
	}
	// A covers every key exactly once per cycle, so the join is total.
	j, err := table.EquiJoin(b, a, "y", "y")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 100000 {
		t.Fatalf("join rows = %d, want all B rows matched", j.NumRows())
	}
}

func TestDeterminism(t *testing.T) {
	a := CCPP(500, 42)
	b := CCPP(500, 42)
	av, _ := a.Floats("EP")
	bv, _ := b.Floats("EP")
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("generation must be deterministic per seed")
		}
	}
	c := CCPP(500, 43)
	cv, _ := c.Floats("EP")
	same := true
	for i := range av {
		if av[i] != cv[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}
