// Package boost implements the regression models R(x) DBEst trains over
// samples (§3, Regression Model Selection): least-squares gradient boosting
// ("GBoost", Friedman 2002), a second-order regularized booster in the style
// of XGBoost (Chen & Guestrin 2016), a piecewise-linear regressor, and an
// ensemble that — exactly as the paper describes — trains the constituent
// regressors, evaluates each on random range queries over the independent
// attribute's domain, and trains a classifier that learns which constituent
// is best for a given range predicate.
package boost

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"dbest/internal/tree"
)

// Regressor is a trained univariate-or-multivariate regression model.
type Regressor interface {
	// Predict evaluates the model at feature vector x.
	Predict(x []float64) float64
	// Predict1 evaluates a univariate model at scalar x.
	Predict1(x float64) float64
	// Name identifies the model family (for catalogs and diagnostics).
	Name() string
}

// Options configures booster training. The zero value gets sensible
// defaults mirroring the paper's observation that larger samples warrant
// "deeper and more trees".
type Options struct {
	Trees        int     // number of boosting rounds; 0 = auto from n
	MaxDepth     int     // per-tree depth; 0 = auto from n
	LearningRate float64 // shrinkage; default 0.1
	MinLeaf      int     // default 5
	Bins         int     // histogram bins; default 64
	Lambda       float64 // L2 leaf regularization (XGBoost-style only); default 1
	Subsample    float64 // stochastic GB row subsampling in (0,1]; default 1
	Seed         int64   // subsampling RNG seed
}

func (o *Options) withDefaults(n int) Options {
	out := Options{LearningRate: 0.1, MinLeaf: 5, Bins: 64, Lambda: 1, Subsample: 1}
	if o != nil {
		*(&out) = *o
		if out.LearningRate <= 0 {
			out.LearningRate = 0.1
		}
		if out.MinLeaf <= 0 {
			out.MinLeaf = 5
		}
		if out.Bins <= 0 {
			out.Bins = 64
		}
		if out.Lambda < 0 {
			out.Lambda = 1
		}
		if out.Subsample <= 0 || out.Subsample > 1 {
			out.Subsample = 1
		}
	}
	// Auto scaling: sample size → capacity, as in the paper ("as samples
	// increase, the regression tree models use deeper and more trees").
	if out.Trees <= 0 {
		switch {
		case n <= 1000:
			out.Trees = 40
		case n <= 10000:
			out.Trees = 60
		case n <= 100000:
			out.Trees = 80
		default:
			out.Trees = 100
		}
	}
	if out.MaxDepth <= 0 {
		switch {
		case n <= 1000:
			out.MaxDepth = 3
		case n <= 10000:
			out.MaxDepth = 4
		case n <= 100000:
			out.MaxDepth = 5
		default:
			out.MaxDepth = 6
		}
	}
	return out
}

// GradientBoost is a least-squares gradient-boosted tree ensemble with
// optional stochastic row subsampling (Friedman's stochastic GB).
type GradientBoost struct {
	Base  float64
	Rate  float64
	Trees []*tree.Regressor
}

// FitGradientBoost trains a GBoost regressor on (X, y).
func FitGradientBoost(X [][]float64, y []float64, opts *Options) (*GradientBoost, error) {
	n := len(X)
	if n == 0 {
		return nil, errors.New("boost: empty training set")
	}
	if len(y) != n {
		return nil, errors.New("boost: X and y length mismatch")
	}
	o := opts.withDefaults(n)
	base := mean(y)
	gb := &GradientBoost{Base: base, Rate: o.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	resid := make([]float64, n)
	rng := rand.New(rand.NewSource(o.Seed + 1))
	treeOpts := &tree.RegOptions{MaxDepth: o.MaxDepth, MinLeaf: o.MinLeaf, Bins: o.Bins}
	for t := 0; t < o.Trees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tx, tr := X, resid
		if o.Subsample < 1 {
			m := int(float64(n) * o.Subsample)
			if m < 2*o.MinLeaf {
				m = min(n, 2*o.MinLeaf)
			}
			idx := rng.Perm(n)[:m]
			tx = make([][]float64, m)
			tr = make([]float64, m)
			for j, i := range idx {
				tx[j] = X[i]
				tr[j] = resid[i]
			}
		}
		tr2, err := tree.FitRegressor(tx, tr, nil, treeOpts)
		if err != nil {
			return nil, err
		}
		gb.Trees = append(gb.Trees, tr2)
		for i := range pred {
			pred[i] += o.LearningRate * tr2.Predict(X[i])
		}
	}
	return gb, nil
}

// Predict evaluates the ensemble at x.
func (g *GradientBoost) Predict(x []float64) float64 {
	s := g.Base
	for _, t := range g.Trees {
		s += g.Rate * t.Predict(x)
	}
	return s
}

// Predict1 evaluates a univariate ensemble at scalar x.
func (g *GradientBoost) Predict1(x float64) float64 {
	s := g.Base
	for _, t := range g.Trees {
		s += g.Rate * t.Predict1(x)
	}
	return s
}

// Name implements Regressor.
func (g *GradientBoost) Name() string { return "gboost" }

// Breakpoints returns the sorted distinct x positions where Predict1 can
// jump — the union of the constituent trees' split thresholds. Between
// consecutive breakpoints the prediction is constant.
func (g *GradientBoost) Breakpoints() []float64 {
	var pts []float64
	for _, t := range g.Trees {
		pts = t.AppendThresholds(pts)
	}
	return sortedUnique(pts)
}

// XGBoost is a second-order boosted ensemble with L2-regularized leaves,
// the "XGBoost" constituent of the paper's ensemble.
type XGBoost struct {
	Base  float64
	Rate  float64
	Trees []*tree.Regressor
}

// FitXGBoost trains the second-order booster on (X, y) under squared loss
// (gradient = pred − y, hessian = 1, leaf = −Σg/(Σh+λ)).
func FitXGBoost(X [][]float64, y []float64, opts *Options) (*XGBoost, error) {
	n := len(X)
	if n == 0 {
		return nil, errors.New("boost: empty training set")
	}
	if len(y) != n {
		return nil, errors.New("boost: X and y length mismatch")
	}
	o := opts.withDefaults(n)
	base := mean(y)
	xb := &XGBoost{Base: base, Rate: o.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range hess {
		hess[i] = 1
	}
	treeOpts := &tree.RegOptions{
		MaxDepth: o.MaxDepth, MinLeaf: o.MinLeaf, Bins: o.Bins,
		Lambda: o.Lambda, SecondOrder: true,
	}
	for t := 0; t < o.Trees; t++ {
		for i := range grad {
			grad[i] = pred[i] - y[i]
		}
		tr, err := tree.FitRegressor(X, grad, hess, treeOpts)
		if err != nil {
			return nil, err
		}
		xb.Trees = append(xb.Trees, tr)
		for i := range pred {
			pred[i] += o.LearningRate * tr.Predict(X[i])
		}
	}
	return xb, nil
}

// Predict evaluates the ensemble at x.
func (g *XGBoost) Predict(x []float64) float64 {
	s := g.Base
	for _, t := range g.Trees {
		s += g.Rate * t.Predict(x)
	}
	return s
}

// Predict1 evaluates a univariate ensemble at scalar x.
func (g *XGBoost) Predict1(x float64) float64 {
	s := g.Base
	for _, t := range g.Trees {
		s += g.Rate * t.Predict1(x)
	}
	return s
}

// Name implements Regressor.
func (g *XGBoost) Name() string { return "xgboost" }

// Breakpoints returns the sorted distinct jump positions of Predict1 (see
// GradientBoost.Breakpoints).
func (g *XGBoost) Breakpoints() []float64 {
	var pts []float64
	for _, t := range g.Trees {
		pts = t.AppendThresholds(pts)
	}
	return sortedUnique(pts)
}

// PiecewiseLinear fits per-segment least-squares lines over a uniform
// partition of the x domain — the "piece-wise linear models" end of the
// paper's model spectrum (and FunctionDB's representation).
type PiecewiseLinear struct {
	Lo, Hi    float64
	Slopes    []float64
	Intercept []float64
}

// FitPiecewiseLinear fits segments least-squares lines; segments <= 0
// selects ~n/50 capped to [4, 64].
func FitPiecewiseLinear(x, y []float64, segments int) (*PiecewiseLinear, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("boost: empty training set")
	}
	if len(y) != n {
		return nil, errors.New("boost: x and y length mismatch")
	}
	if segments <= 0 {
		segments = n / 50
		if segments < 4 {
			segments = 4
		}
		if segments > 64 {
			segments = 64
		}
	}
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return &PiecewiseLinear{Lo: lo, Hi: hi, Slopes: []float64{0}, Intercept: []float64{mean(y)}}, nil
	}
	pl := &PiecewiseLinear{
		Lo: lo, Hi: hi,
		Slopes:    make([]float64, segments),
		Intercept: make([]float64, segments),
	}
	type acc struct{ n, sx, sy, sxx, sxy float64 }
	accs := make([]acc, segments)
	scale := float64(segments) / (hi - lo)
	for i := range x {
		s := int((x[i] - lo) * scale)
		if s >= segments {
			s = segments - 1
		}
		a := &accs[s]
		a.n++
		a.sx += x[i]
		a.sy += y[i]
		a.sxx += x[i] * x[i]
		a.sxy += x[i] * y[i]
	}
	overall := mean(y)
	for s := range accs {
		a := accs[s]
		if a.n < 2 {
			// Underpopulated segment: fall back to the global mean so the
			// model remains defined over the whole domain.
			pl.Intercept[s] = overall
			continue
		}
		den := a.n*a.sxx - a.sx*a.sx
		if math.Abs(den) < 1e-12 {
			pl.Intercept[s] = a.sy / a.n
			continue
		}
		b := (a.n*a.sxy - a.sx*a.sy) / den
		pl.Slopes[s] = b
		pl.Intercept[s] = (a.sy - b*a.sx) / a.n
	}
	return pl, nil
}

// Predict evaluates at x[0].
func (p *PiecewiseLinear) Predict(x []float64) float64 { return p.Predict1(x[0]) }

// Predict1 evaluates the segment containing x (clamped to the domain).
func (p *PiecewiseLinear) Predict1(x float64) float64 {
	segs := len(p.Slopes)
	if segs == 1 || p.Hi == p.Lo {
		return p.Slopes[0]*x + p.Intercept[0]
	}
	s := int((x - p.Lo) / (p.Hi - p.Lo) * float64(segs))
	if s < 0 {
		s = 0
	}
	if s >= segs {
		s = segs - 1
	}
	return p.Slopes[s]*x + p.Intercept[s]
}

// Name implements Regressor.
func (p *PiecewiseLinear) Name() string { return "plr" }

// Breakpoints returns the segment boundaries, where Predict1 may be
// discontinuous; within a segment the prediction is linear.
func (p *PiecewiseLinear) Breakpoints() []float64 {
	segs := len(p.Slopes)
	if segs <= 1 || p.Hi <= p.Lo {
		return nil
	}
	pts := make([]float64, 0, segs-1)
	for i := 1; i < segs; i++ {
		pts = append(pts, p.Lo+(p.Hi-p.Lo)*float64(i)/float64(segs))
	}
	return pts
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// sortedUnique sorts xs in place and drops exact duplicates.
func sortedUnique(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	sort.Float64s(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
