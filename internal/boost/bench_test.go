package boost

import (
	"math"
	"math/rand"
	"testing"
)

func benchXY(n int) (x, y []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 5*math.Sin(x[i]) + 0.3*x[i] + 0.1*rng.NormFloat64()
	}
	return x, y
}

func BenchmarkFitGradientBoost10k(b *testing.B) {
	x, y := benchXY(10_000)
	X := toRowsBench(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGradientBoost(X, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitXGBoost10k(b *testing.B) {
	x, y := benchXY(10_000)
	X := toRowsBench(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitXGBoost(X, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitEnsemble10k(b *testing.B) {
	x, y := benchXY(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitEnsemble(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsemblePredict(b *testing.B) {
	x, y := benchXY(10_000)
	ens, err := FitEnsemble(x, y, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ens.Predict1(float64(i%10) + 0.5)
	}
}

func toRowsBench(x []float64) [][]float64 {
	X := make([][]float64, len(x))
	for i := range x {
		X[i] = []float64{x[i]}
	}
	return X
}
