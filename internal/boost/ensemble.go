package boost

import (
	"errors"
	"math"
	"math/rand"

	"dbest/internal/tree"
)

// Ensemble combines constituent regressors (by default GBoost and
// XGBoost-style, per the paper) with a learned selector: after training each
// constituent, random range queries over the independent attribute's domain
// score the constituents' AVG-prediction accuracy, and a classification tree
// on (range centre, range width) learns which constituent to trust for a
// given range predicate. Point predictions route through the selector using
// a zero-width range at x.
type Ensemble struct {
	Models   []Regressor
	Selector *tree.Classifier // nil when a single model dominated everywhere
	Default  int              // fallback constituent index
}

// EnsembleOptions configures ensemble training.
type EnsembleOptions struct {
	Boost      *Options // shared booster options
	Queries    int      // evaluation range queries; default 60
	Seed       int64
	IncludePLR bool // also include the piecewise-linear constituent
}

// FitEnsemble trains the ensemble regressor on the univariate pairs (x, y).
func FitEnsemble(x, y []float64, opts *EnsembleOptions) (*Ensemble, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("boost: empty training set")
	}
	if len(y) != n {
		return nil, errors.New("boost: x and y length mismatch")
	}
	var o EnsembleOptions
	if opts != nil {
		o = *opts
	}
	if o.Queries <= 0 {
		o.Queries = 60
	}

	X := make([][]float64, n)
	for i := range x {
		X[i] = []float64{x[i]}
	}
	gb, err := FitGradientBoost(X, y, o.Boost)
	if err != nil {
		return nil, err
	}
	xb, err := FitXGBoost(X, y, o.Boost)
	if err != nil {
		return nil, err
	}
	models := []Regressor{gb, xb}
	if o.IncludePLR {
		pl, err := FitPiecewiseLinear(x, y, 0)
		if err != nil {
			return nil, err
		}
		models = append(models, pl)
	}

	// Evaluate constituents on random range queries: for each range, the
	// "true" answer is the mean of y over training points falling in range;
	// each constituent answers with the mean of its predictions over those
	// points. The winner label trains the selector. Per-point predictions
	// are computed once per model and reused across all evaluation queries.
	xs := sortedCopy(x)
	lo, hi := xs[0], xs[len(xs)-1]
	if hi == lo {
		return &Ensemble{Models: models, Default: 0}, nil
	}
	perModel := make([][]float64, len(models))
	for m, mod := range models {
		p := make([]float64, n)
		for i := range x {
			p[i] = mod.Predict1(x[i])
		}
		perModel[m] = p
	}
	rng := rand.New(rand.NewSource(o.Seed + 7))
	var feats [][]float64
	var labels []int
	wins := make([]int, len(models))
	errSums := make([]float64, len(models))
	for q := 0; q < o.Queries; q++ {
		width := (hi - lo) * (0.01 + 0.2*rng.Float64())
		start := lo + rng.Float64()*(hi-lo-width)
		end := start + width
		var truth, count float64
		preds := make([]float64, len(models))
		for i := range x {
			if x[i] >= start && x[i] <= end {
				truth += y[i]
				count++
				for m := range models {
					preds[m] += perModel[m][i]
				}
			}
		}
		if count < 3 {
			continue
		}
		truth /= count
		best, bestErr := 0, math.Inf(1)
		for m := range models {
			e := math.Abs(preds[m]/count - truth)
			errSums[m] += e
			if e < bestErr {
				best, bestErr = m, e
			}
		}
		wins[best]++
		feats = append(feats, []float64{(start + end) / 2, width})
		labels = append(labels, best)
	}

	def := 0
	for m := range errSums {
		if errSums[m] < errSums[def] {
			def = m
		}
	}
	ens := &Ensemble{Models: models, Default: def}
	// Only bother with a selector when no constituent wins everywhere.
	distinct := 0
	for _, w := range wins {
		if w > 0 {
			distinct++
		}
	}
	if distinct > 1 && len(feats) >= 10 {
		sel, err := tree.FitClassifier(feats, labels, len(models), &tree.ClsOptions{MaxDepth: 3})
		if err == nil {
			ens.Selector = sel
		}
	}
	return ens, nil
}

// selectFor picks the constituent for a range centred at c with width w.
func (e *Ensemble) selectFor(c, w float64) Regressor {
	return e.Models[e.indexFor(c, w)]
}

// indexFor resolves the constituent index for a range centred at c with
// width w.
func (e *Ensemble) indexFor(c, w float64) int {
	if e.Selector == nil {
		return e.Default
	}
	i := e.Selector.Predict([]float64{c, w})
	if i < 0 || i >= len(e.Models) {
		i = e.Default
	}
	return i
}

// IndexForRange returns the index into Models of the constituent ForRange
// would select for [lb, ub]. Precomputed evaluation grids key their
// per-constituent integral tables by this index, so grid lookups honor the
// same per-range selection the quadrature path uses.
func (e *Ensemble) IndexForRange(lb, ub float64) int {
	return e.indexFor((lb+ub)/2, ub-lb)
}

// PredictRange evaluates the model chosen for the range [lb, ub] at point x.
// DBEst query evaluation uses this so that one constituent answers the whole
// integral consistently.
func (e *Ensemble) PredictRange(x, lb, ub float64) float64 {
	return e.selectFor((lb+ub)/2, ub-lb).Predict1(x)
}

// ForRange returns the constituent regressor selected for [lb, ub], letting
// integrators hoist the selection out of the integrand.
func (e *Ensemble) ForRange(lb, ub float64) Regressor {
	return e.selectFor((lb+ub)/2, ub-lb)
}

// Predict implements Regressor via the selector with a zero-width range.
func (e *Ensemble) Predict(x []float64) float64 { return e.Predict1(x[0]) }

// Predict1 implements Regressor.
func (e *Ensemble) Predict1(x float64) float64 {
	return e.selectFor(x, 0).Predict1(x)
}

// Name implements Regressor.
func (e *Ensemble) Name() string { return "ensemble" }
