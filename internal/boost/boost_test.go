package boost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeSine(rng *rand.Rand, n int, noise float64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 5*math.Sin(x[i]) + 0.3*x[i] + noise*rng.NormFloat64()
	}
	return x, y
}

func toRows(x []float64) [][]float64 {
	X := make([][]float64, len(x))
	for i := range x {
		X[i] = []float64{x[i]}
	}
	return X
}

func rmse(pred func(float64) float64, x, y []float64) float64 {
	s := 0.0
	for i := range x {
		d := pred(x[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

func TestFitGradientBoostErrors(t *testing.T) {
	if _, err := FitGradientBoost(nil, nil, nil); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitGradientBoost(toRows([]float64{1}), []float64{1, 2}, nil); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestFitXGBoostErrors(t *testing.T) {
	if _, err := FitXGBoost(nil, nil, nil); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitXGBoost(toRows([]float64{1}), []float64{1, 2}, nil); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestGradientBoostLearnsSine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeSine(rng, 2000, 0.1)
	gb, err := FitGradientBoost(toRows(x), y, &Options{Trees: 80, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := rmse(gb.Predict1, x, y); e > 0.5 {
		t.Fatalf("train RMSE = %v, want < 0.5", e)
	}
	// Generalization at unseen points.
	if got, want := gb.Predict1(2.5), 5*math.Sin(2.5)+0.3*2.5; math.Abs(got-want) > 0.7 {
		t.Fatalf("Predict1(2.5) = %v, want ≈ %v", got, want)
	}
}

func TestXGBoostLearnsSine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := makeSine(rng, 2000, 0.1)
	xb, err := FitXGBoost(toRows(x), y, &Options{Trees: 80, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := rmse(xb.Predict1, x, y); e > 0.5 {
		t.Fatalf("train RMSE = %v, want < 0.5", e)
	}
}

func TestBoostersBeatConstantBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeSine(rng, 1000, 0.2)
	m := mean(y)
	base := rmse(func(float64) float64 { return m }, x, y)
	gb, _ := FitGradientBoost(toRows(x), y, nil)
	xb, _ := FitXGBoost(toRows(x), y, nil)
	if e := rmse(gb.Predict1, x, y); e > base/2 {
		t.Fatalf("gboost RMSE %v vs baseline %v", e, base)
	}
	if e := rmse(xb.Predict1, x, y); e > base/2 {
		t.Fatalf("xgboost RMSE %v vs baseline %v", e, base)
	}
}

func TestMoreTreesFitBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := makeSine(rng, 1000, 0.05)
	short, _ := FitGradientBoost(toRows(x), y, &Options{Trees: 5, MaxDepth: 3})
	long, _ := FitGradientBoost(toRows(x), y, &Options{Trees: 60, MaxDepth: 3})
	if rmse(long.Predict1, x, y) >= rmse(short.Predict1, x, y) {
		t.Fatal("more boosting rounds should reduce training error")
	}
}

func TestSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := makeSine(rng, 500, 0.1)
	gb, err := FitGradientBoost(toRows(x), y, &Options{Trees: 30, Subsample: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if e := rmse(gb.Predict1, x, y); e > 1.5 {
		t.Fatalf("stochastic GB RMSE = %v", e)
	}
}

func TestXGBoostLambdaShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := makeSine(rng, 400, 0.1)
	low, _ := FitXGBoost(toRows(x), y, &Options{Trees: 20, Lambda: 0.001})
	high, _ := FitXGBoost(toRows(x), y, &Options{Trees: 20, Lambda: 1000})
	// Heavy regularization must hurt training fit (leaves shrink to ~0).
	if rmse(high.Predict1, x, y) <= rmse(low.Predict1, x, y) {
		t.Fatal("large lambda should increase training error")
	}
}

func TestFitPiecewiseLinear(t *testing.T) {
	// Exactly linear data: PLR should be near-perfect.
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = 3*x[i] - 7
	}
	pl, err := FitPiecewiseLinear(x, y, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, xi := range []float64{0.5, 20, 49} {
		if got, want := pl.Predict1(xi), 3*xi-7; math.Abs(got-want) > 1e-6 {
			t.Fatalf("PLR(%v) = %v, want %v", xi, got, want)
		}
	}
	// Out-of-domain clamps to boundary segments and Predict delegates.
	if got := pl.Predict([]float64{-5}); math.Abs(got-(3*-5-7)) > 1e-6 {
		t.Fatalf("clamped prediction = %v", got)
	}
}

func TestPiecewiseLinearDegenerate(t *testing.T) {
	pl, err := FitPiecewiseLinear([]float64{2, 2, 2}, []float64{5, 6, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Predict1(2); math.Abs(got-6) > 1e-9 {
		t.Fatalf("constant-x PLR = %v, want 6", got)
	}
	if _, err := FitPiecewiseLinear(nil, nil, 0); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitPiecewiseLinear([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want error for mismatch")
	}
}

func TestPiecewiseLinearSparseSegments(t *testing.T) {
	// 3 points, 16 segments: most segments are empty and must fall back to
	// the global mean rather than produce zeros.
	x := []float64{0, 5, 10}
	y := []float64{10, 10, 10}
	pl, err := FitPiecewiseLinear(x, y, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Predict1(3.3); math.Abs(got-10) > 1e-9 {
		t.Fatalf("sparse segment = %v, want 10", got)
	}
}

func TestNames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := makeSine(rng, 200, 0.1)
	gb, _ := FitGradientBoost(toRows(x), y, &Options{Trees: 2})
	xb, _ := FitXGBoost(toRows(x), y, &Options{Trees: 2})
	pl, _ := FitPiecewiseLinear(x, y, 4)
	ens, _ := FitEnsemble(x, y, nil)
	for _, tc := range []struct {
		r    Regressor
		want string
	}{{gb, "gboost"}, {xb, "xgboost"}, {pl, "plr"}, {ens, "ensemble"}} {
		if tc.r.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.r.Name(), tc.want)
		}
	}
}

func TestFitEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := makeSine(rng, 1500, 0.1)
	ens, err := FitEnsemble(x, y, &EnsembleOptions{IncludePLR: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Models) != 3 {
		t.Fatalf("models = %d, want 3", len(ens.Models))
	}
	if e := rmse(ens.Predict1, x, y); e > 0.8 {
		t.Fatalf("ensemble RMSE = %v", e)
	}
	// Range-consistent prediction must agree with the selected constituent.
	sel := ens.ForRange(2, 4)
	if got := ens.PredictRange(3, 2, 4); got != sel.Predict1(3) {
		t.Fatal("PredictRange must route through the selected constituent")
	}
}

func TestFitEnsembleErrors(t *testing.T) {
	if _, err := FitEnsemble(nil, nil, nil); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitEnsemble([]float64{1}, []float64{1, 2}, nil); err == nil {
		t.Fatal("want error for mismatch")
	}
}

func TestFitEnsembleConstantX(t *testing.T) {
	x := []float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ens, err := FitEnsemble(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Selector != nil {
		t.Fatal("degenerate domain should not train a selector")
	}
	if got := ens.Predict1(3); math.Abs(got-5.5) > 0.5 {
		t.Fatalf("Predict1(3) = %v, want ≈ 5.5", got)
	}
}

// Property: boosters' training RMSE is bounded by the target spread.
func TestBoosterRMSEBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(300)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.NormFloat64() * 5
		}
		gb, err := FitGradientBoost(toRows(x), y, &Options{Trees: 10})
		if err != nil {
			return false
		}
		var sd float64
		m := mean(y)
		for _, v := range y {
			sd += (v - m) * (v - m)
		}
		sd = math.Sqrt(sd / float64(n))
		return rmse(gb.Predict1, x, y) <= sd+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: ensemble AVG over a range tracks the empirical mean of y in that
// range for smooth monotone data.
func TestEnsembleRangeAvgProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 800
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 10
			y[i] = 2*x[i] + 1 + 0.1*rng.NormFloat64()
		}
		ens, err := FitEnsemble(x, y, nil)
		if err != nil {
			return false
		}
		lb := rng.Float64() * 5
		ub := lb + 2 + rng.Float64()*2
		var truth, pred, cnt float64
		for i := range x {
			if x[i] >= lb && x[i] <= ub {
				truth += y[i]
				pred += ens.PredictRange(x[i], lb, ub)
				cnt++
			}
		}
		if cnt < 10 {
			return true // vacuous
		}
		return math.Abs(pred/cnt-truth/cnt) < 0.25*math.Abs(truth/cnt)+0.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
