// Package tree implements CART-style decision trees from scratch:
// least-squares regression trees (the weak learners inside the gradient
// boosters of internal/boost, replacing sklearn/XGBoost tree builders) and
// majority-vote classification trees (used by the ensemble regressor's
// learned model selector, paper §3 "Regression Model Selection").
//
// Splits are found with histogram binning (a fixed number of candidate
// thresholds per feature), the same strategy LightGBM popularized, which
// keeps training O(n · features · bins) per node.
package tree

import (
	"errors"
	"math"
	"sort"
)

// node is a tree node; leaves have feature == -1.
type node struct {
	Feature   int     // split feature index, -1 for leaf
	Threshold float64 // go left if x[Feature] <= Threshold
	Left      int32   // child indices into the node arena
	Right     int32
	Value     float64 // leaf prediction
}

// Regressor is a least-squares CART regression tree.
type Regressor struct {
	Nodes []node
}

// RegOptions controls regression-tree growth.
type RegOptions struct {
	MaxDepth    int // default 6
	MinLeaf     int // minimum samples per leaf; default 5
	Bins        int // histogram candidate thresholds per feature; default 64
	MinGain     float64
	Lambda      float64 // L2 regularization on leaf values (XGBoost-style); default 0
	LeafShrink  float64 // multiply leaf values (learning handled by booster; default 1)
	SecondOrder bool    // use hessian-weighted leaves (paper's "XGBoost" variant)
}

func (o *RegOptions) withDefaults() RegOptions {
	out := RegOptions{MaxDepth: 6, MinLeaf: 5, Bins: 64, LeafShrink: 1}
	if o == nil {
		return out
	}
	if o.MaxDepth > 0 {
		out.MaxDepth = o.MaxDepth
	}
	if o.MinLeaf > 0 {
		out.MinLeaf = o.MinLeaf
	}
	if o.Bins > 0 {
		out.Bins = o.Bins
	}
	if o.MinGain > 0 {
		out.MinGain = o.MinGain
	}
	out.Lambda = o.Lambda
	if o.LeafShrink > 0 {
		out.LeafShrink = o.LeafShrink
	}
	out.SecondOrder = o.SecondOrder
	return out
}

// FitRegressor fits a regression tree to features X (n rows × d columns,
// row-major [][]float64) against gradients g and hessians h. For plain
// least-squares fitting pass g = targets and h = nil (unit hessians).
func FitRegressor(X [][]float64, g, h []float64, opts *RegOptions) (*Regressor, error) {
	n := len(X)
	if n == 0 {
		return nil, errors.New("tree: empty training set")
	}
	if len(g) != n {
		return nil, errors.New("tree: X and g length mismatch")
	}
	if h != nil && len(h) != n {
		return nil, errors.New("tree: X and h length mismatch")
	}
	o := opts.withDefaults()
	t := &Regressor{}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	b := &builder{X: X, G: g, H: h, opts: o, tree: t}
	b.grow(idx, 0)
	return t, nil
}

type builder struct {
	X    [][]float64
	G    []float64
	H    []float64
	opts RegOptions
	tree *Regressor
}

func (b *builder) hess(i int) float64 {
	if b.H == nil {
		return 1
	}
	return b.H[i]
}

// leafValue computes the optimal leaf weight −Σg/(Σh+λ) (second-order) or
// the mean target (first-order; there g holds residuals/targets directly).
func (b *builder) leafValue(idx []int) float64 {
	var sg, sh float64
	for _, i := range idx {
		sg += b.G[i]
		sh += b.hess(i)
	}
	den := sh + b.opts.Lambda
	if den == 0 {
		return 0
	}
	if b.opts.SecondOrder {
		return -sg / den * b.opts.LeafShrink
	}
	return sg / den * b.opts.LeafShrink
}

// grow recursively grows the subtree over the rows idx and returns its index
// in the node arena.
func (b *builder) grow(idx []int, depth int) int32 {
	me := int32(len(b.tree.Nodes))
	b.tree.Nodes = append(b.tree.Nodes, node{Feature: -1})
	if depth >= b.opts.MaxDepth || len(idx) < 2*b.opts.MinLeaf {
		b.tree.Nodes[me].Value = b.leafValue(idx)
		return me
	}
	feat, thr, gain := b.bestSplit(idx)
	if feat < 0 || gain <= b.opts.MinGain {
		b.tree.Nodes[me].Value = b.leafValue(idx)
		return me
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.opts.MinLeaf || len(right) < b.opts.MinLeaf {
		b.tree.Nodes[me].Value = b.leafValue(idx)
		return me
	}
	b.tree.Nodes[me].Feature = feat
	b.tree.Nodes[me].Threshold = thr
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.tree.Nodes[me].Left = l
	b.tree.Nodes[me].Right = r
	return me
}

// bestSplit scans histogram-binned candidate thresholds on every feature and
// returns the split maximizing the variance-reduction (or, second-order, the
// regularized gain (Σg_L)²/(Σh_L+λ) + (Σg_R)²/(Σh_R+λ) − (Σg)²/(Σh+λ)).
func (b *builder) bestSplit(idx []int) (feature int, threshold, gain float64) {
	d := len(b.X[idx[0]])
	feature = -1
	var totG, totH float64
	for _, i := range idx {
		totG += b.G[i]
		totH += b.hess(i)
	}
	lam := b.opts.Lambda
	parentScore := totG * totG / (totH + lam)

	binsG := make([]float64, b.opts.Bins)
	binsH := make([]float64, b.opts.Bins)
	binsN := make([]int, b.opts.Bins)
	for f := 0; f < d; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := b.X[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		for k := range binsG {
			binsG[k], binsH[k], binsN[k] = 0, 0, 0
		}
		scale := float64(b.opts.Bins) / (hi - lo)
		for _, i := range idx {
			k := int((b.X[i][f] - lo) * scale)
			if k >= b.opts.Bins {
				k = b.opts.Bins - 1
			}
			binsG[k] += b.G[i]
			binsH[k] += b.hess(i)
			binsN[k]++
		}
		var cg, ch float64
		cn := 0
		for k := 0; k < b.opts.Bins-1; k++ {
			cg += binsG[k]
			ch += binsH[k]
			cn += binsN[k]
			if cn < b.opts.MinLeaf || len(idx)-cn < b.opts.MinLeaf {
				continue
			}
			rg, rh := totG-cg, totH-ch
			g := cg*cg/(ch+lam) + rg*rg/(rh+lam) - parentScore
			if g > gain {
				gain = g
				feature = f
				threshold = lo + float64(k+1)/scale
			}
		}
	}
	return feature, threshold, gain
}

// Predict evaluates the tree at feature vector x.
func (t *Regressor) Predict(x []float64) float64 {
	if len(t.Nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		nd := &t.Nodes[i]
		if nd.Feature < 0 {
			return nd.Value
		}
		if x[nd.Feature] <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

// Predict1 evaluates a univariate tree at scalar x without allocating.
func (t *Regressor) Predict1(x float64) float64 {
	if len(t.Nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		nd := &t.Nodes[i]
		if nd.Feature < 0 {
			return nd.Value
		}
		if x <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

// NumNodes returns the size of the tree.
func (t *Regressor) NumNodes() int { return len(t.Nodes) }

// AppendThresholds appends every internal-node split threshold to out and
// returns the extended slice. For a univariate tree these are exactly the
// x positions where Predict1 can jump — callers tabulating the prediction
// function (e.g. integration grids) align their panels with them.
func (t *Regressor) AppendThresholds(out []float64) []float64 {
	for i := range t.Nodes {
		if t.Nodes[i].Feature >= 0 {
			out = append(out, t.Nodes[i].Threshold)
		}
	}
	return out
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Regressor) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var rec func(i int32) int
	rec = func(i int32) int {
		nd := &t.Nodes[i]
		if nd.Feature < 0 {
			return 0
		}
		l, r := rec(nd.Left), rec(nd.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(0)
}

// Classifier is a CART classification tree with majority-vote leaves,
// trained by Gini impurity reduction. It powers the ensemble regressor's
// per-range model selection.
type Classifier struct {
	Nodes   []node // Value holds the class label as float64
	Classes int
}

// ClsOptions controls classification-tree growth.
type ClsOptions struct {
	MaxDepth int // default 4
	MinLeaf  int // default 3
	Bins     int // default 32
}

func (o *ClsOptions) withDefaults() ClsOptions {
	out := ClsOptions{MaxDepth: 4, MinLeaf: 3, Bins: 32}
	if o == nil {
		return out
	}
	if o.MaxDepth > 0 {
		out.MaxDepth = o.MaxDepth
	}
	if o.MinLeaf > 0 {
		out.MinLeaf = o.MinLeaf
	}
	if o.Bins > 0 {
		out.Bins = o.Bins
	}
	return out
}

// FitClassifier fits a Gini-impurity classification tree mapping rows of X
// to integer class labels y in [0, classes).
func FitClassifier(X [][]float64, y []int, classes int, opts *ClsOptions) (*Classifier, error) {
	n := len(X)
	if n == 0 {
		return nil, errors.New("tree: empty training set")
	}
	if len(y) != n {
		return nil, errors.New("tree: X and y length mismatch")
	}
	if classes < 1 {
		return nil, errors.New("tree: classes must be >= 1")
	}
	for _, c := range y {
		if c < 0 || c >= classes {
			return nil, errors.New("tree: label out of range")
		}
	}
	o := opts.withDefaults()
	t := &Classifier{Classes: classes}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cb := &clsBuilder{X: X, Y: y, classes: classes, opts: o, tree: t}
	cb.grow(idx, 0)
	return t, nil
}

type clsBuilder struct {
	X       [][]float64
	Y       []int
	classes int
	opts    ClsOptions
	tree    *Classifier
}

func (b *clsBuilder) majority(idx []int) float64 {
	counts := make([]int, b.classes)
	for _, i := range idx {
		counts[b.Y[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return float64(best)
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		s -= p * p
	}
	return s
}

func (b *clsBuilder) grow(idx []int, depth int) int32 {
	me := int32(len(b.tree.Nodes))
	b.tree.Nodes = append(b.tree.Nodes, node{Feature: -1})
	pure := true
	for _, i := range idx[1:] {
		if b.Y[i] != b.Y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth >= b.opts.MaxDepth || len(idx) < 2*b.opts.MinLeaf {
		b.tree.Nodes[me].Value = b.majority(idx)
		return me
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		b.tree.Nodes[me].Value = b.majority(idx)
		return me
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.opts.MinLeaf || len(right) < b.opts.MinLeaf {
		b.tree.Nodes[me].Value = b.majority(idx)
		return me
	}
	b.tree.Nodes[me].Feature = feat
	b.tree.Nodes[me].Threshold = thr
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.tree.Nodes[me].Left = l
	b.tree.Nodes[me].Right = r
	return me
}

func (b *clsBuilder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	d := len(b.X[idx[0]])
	parentCounts := make([]int, b.classes)
	for _, i := range idx {
		parentCounts[b.Y[i]]++
	}
	bestImp := gini(parentCounts, len(idx))
	feature = -1
	for f := 0; f < d; f++ {
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, b.X[i][f])
		}
		sort.Float64s(vals)
		if vals[0] == vals[len(vals)-1] {
			continue
		}
		// Candidate thresholds: quantiles of the feature values.
		for k := 1; k < b.opts.Bins; k++ {
			thr := vals[k*len(vals)/b.opts.Bins]
			lc := make([]int, b.classes)
			rc := make([]int, b.classes)
			ln, rn := 0, 0
			for _, i := range idx {
				if b.X[i][f] <= thr {
					lc[b.Y[i]]++
					ln++
				} else {
					rc[b.Y[i]]++
					rn++
				}
			}
			if ln < b.opts.MinLeaf || rn < b.opts.MinLeaf {
				continue
			}
			imp := (float64(ln)*gini(lc, ln) + float64(rn)*gini(rc, rn)) / float64(len(idx))
			if imp < bestImp-1e-12 {
				bestImp = imp
				feature = f
				threshold = thr
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// Predict returns the class label for feature vector x.
func (t *Classifier) Predict(x []float64) int {
	if len(t.Nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		nd := &t.Nodes[i]
		if nd.Feature < 0 {
			return int(nd.Value)
		}
		if x[nd.Feature] <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}
