package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func col(xs []float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = []float64{x}
	}
	return out
}

func TestFitRegressorErrors(t *testing.T) {
	if _, err := FitRegressor(nil, nil, nil, nil); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitRegressor(col([]float64{1, 2}), []float64{1}, nil, nil); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := FitRegressor(col([]float64{1, 2}), []float64{1, 2}, []float64{1}, nil); err == nil {
		t.Fatal("want error for hessian length mismatch")
	}
}

func TestRegressorFitsStepFunction(t *testing.T) {
	// y = 0 for x < 0.5, y = 10 for x >= 0.5: one split suffices.
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		X[i] = []float64{x}
		if x >= 0.5 {
			y[i] = 10
		}
	}
	tr, err := FitRegressor(X, y, nil, &RegOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.2}); math.Abs(got) > 0.5 {
		t.Fatalf("Predict(0.2) = %v, want ≈ 0", got)
	}
	if got := tr.Predict([]float64{0.8}); math.Abs(got-10) > 0.5 {
		t.Fatalf("Predict(0.8) = %v, want ≈ 10", got)
	}
	if got := tr.Predict1(0.8); math.Abs(got-10) > 0.5 {
		t.Fatalf("Predict1(0.8) = %v, want ≈ 10", got)
	}
}

func TestRegressorConstantTarget(t *testing.T) {
	X := col([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	y := make([]float64, 10)
	for i := range y {
		y[i] = 7
	}
	tr, err := FitRegressor(X, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{3.3}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Predict = %v, want 7", got)
	}
	if tr.Depth() != 0 {
		t.Fatalf("constant target should give a single leaf, depth %d", tr.Depth())
	}
}

func TestRegressorRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = math.Sin(x) + 0.1*rng.NormFloat64()
	}
	for _, depth := range []int{1, 2, 4} {
		tr, err := FitRegressor(X, y, nil, &RegOptions{MaxDepth: depth, MinLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := tr.Depth(); d > depth {
			t.Fatalf("Depth = %d > MaxDepth %d", d, depth)
		}
	}
}

func TestRegressorMultiFeature(t *testing.T) {
	// y depends only on feature 1; the tree should split on it.
	rng := rand.New(rand.NewSource(2))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		if X[i][1] > 0.5 {
			y[i] = 5
		}
	}
	tr, err := FitRegressor(X, y, nil, &RegOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.9, 0.1}); math.Abs(got) > 1 {
		t.Fatalf("Predict = %v, want ≈ 0", got)
	}
	if got := tr.Predict([]float64{0.1, 0.9}); math.Abs(got-5) > 1 {
		t.Fatalf("Predict = %v, want ≈ 5", got)
	}
}

func TestSecondOrderLeaves(t *testing.T) {
	// With g = gradient of ½(pred−y)² at pred=0 (i.e. −y), h = 1, second-
	// order leaf −Σg/(Σh+λ) recovers mean(y) shrunk by λ.
	X := col([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	g := make([]float64, 8)
	h := make([]float64, 8)
	for i := range g {
		g[i] = -4.0 // all targets 4
		h[i] = 1
	}
	tr, err := FitRegressor(X, g, h, &RegOptions{MaxDepth: 1, SecondOrder: true, Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{3}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("second-order leaf = %v, want 4", got)
	}
	// With λ = 8 (equal to Σh) the leaf shrinks to 2.
	tr2, err := FitRegressor(X, g, h, &RegOptions{MaxDepth: 1, SecondOrder: true, Lambda: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Predict([]float64{3}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("regularized leaf = %v, want 2", got)
	}
}

func TestEmptyTreePredicts(t *testing.T) {
	var tr Regressor
	if tr.Predict([]float64{1}) != 0 || tr.Predict1(1) != 0 {
		t.Fatal("empty tree should predict 0")
	}
	var c Classifier
	if c.Predict([]float64{1}) != 0 {
		t.Fatal("empty classifier should predict 0")
	}
}

// Property: tree predictions never exceed the target range (leaves are means
// of first-order targets).
func TestRegressorPredictionsWithinRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64() * 100}
			y[i] = rng.NormFloat64() * 10
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		tr, err := FitRegressor(X, y, nil, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tr.Predict([]float64{rng.Float64() * 100})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: deeper trees never fit the training data worse (in-sample MSE is
// nonincreasing in MaxDepth).
func TestDeeperTreesFitBetterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			x := rng.Float64() * 6
			X[i] = []float64{x}
			y[i] = math.Sin(x)*3 + rng.NormFloat64()*0.2
		}
		mse := func(depth int) float64 {
			tr, err := FitRegressor(X, y, nil, &RegOptions{MaxDepth: depth, MinLeaf: 1})
			if err != nil {
				return math.Inf(1)
			}
			s := 0.0
			for i := range X {
				d := tr.Predict(X[i]) - y[i]
				s += d * d
			}
			return s / float64(n)
		}
		return mse(6) <= mse(3)+1e-9 && mse(3) <= mse(1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFitClassifierErrors(t *testing.T) {
	if _, err := FitClassifier(nil, nil, 2, nil); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := FitClassifier(col([]float64{1}), []int{0, 1}, 2, nil); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := FitClassifier(col([]float64{1}), []int{0}, 0, nil); err == nil {
		t.Fatal("want error for classes < 1")
	}
	if _, err := FitClassifier(col([]float64{1}), []int{5}, 2, nil); err == nil {
		t.Fatal("want error for out-of-range label")
	}
}

func TestClassifierSeparable(t *testing.T) {
	// Class 1 iff x > 0.6.
	n := 200
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		x := float64(i) / float64(n)
		X[i] = []float64{x}
		if x > 0.6 {
			y[i] = 1
		}
	}
	c, err := FitClassifier(X, y, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Predict([]float64{0.2}) != 0 || c.Predict([]float64{0.9}) != 1 {
		t.Fatalf("classifier failed on separable data: %d %d",
			c.Predict([]float64{0.2}), c.Predict([]float64{0.9}))
	}
}

func TestClassifierPureInput(t *testing.T) {
	X := col([]float64{1, 2, 3, 4})
	y := []int{1, 1, 1, 1}
	c, err := FitClassifier(X, y, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 1 {
		t.Fatalf("pure input should yield a single leaf, got %d nodes", len(c.Nodes))
	}
	if c.Predict([]float64{100}) != 1 {
		t.Fatal("wrong class")
	}
}

func TestClassifierTwoFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		// Conjunctive quadrant labeling requires depth 2.
		if X[i][0] > 0.5 && X[i][1] > 0.5 {
			y[i] = 1
		}
	}
	c, err := FitClassifier(X, y, 2, &ClsOptions{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if c.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("accuracy = %v, want >= 0.9", acc)
	}
}

// Property: classifier training accuracy on well-separated clusters is high.
func TestClassifierClustersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			c := i % 3
			y[i] = c
			X[i] = []float64{float64(c)*10 + rng.NormFloat64()}
		}
		cls, err := FitClassifier(X, y, 3, &ClsOptions{MaxDepth: 4})
		if err != nil {
			return false
		}
		correct := 0
		for i := range X {
			if cls.Predict(X[i]) == y[i] {
				correct++
			}
		}
		return float64(correct)/float64(n) > 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
