// Package catalog implements DBEst's model catalog (Fig. 1): the registry
// mapping column sets of tables to their trained models, with gob-based
// persistence and the model bundles of §2.3 ("Limitations") that let
// large-cardinality GROUP BY model collections spill to SSD and load on
// demand in ~100 ms.
package catalog

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"dbest/internal/core"
)

// Catalog is a concurrency-safe registry of trained model sets.
type Catalog struct {
	mu     sync.RWMutex
	models map[string]*core.ModelSet
	gen    uint64

	// byTable indexes model-set keys by table name so per-table lookups
	// (density fallback, nominal lookup, the planner's permuted and
	// any-column searches) stop scanning the whole catalog. It is rebuilt
	// lazily: idxGen records the generation it was built under, and any
	// mutation bumping gen invalidates it without the mutation path
	// touching the index.
	byTable map[string][]string
	idxGen  uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{models: make(map[string]*core.ModelSet)}
}

// Generation returns a counter that increases on every catalog mutation
// (Put, Remove, Load). Callers that cache plans derived from catalog
// contents compare generations to detect staleness without re-scanning.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Invalidate bumps the generation without changing the catalog contents.
// Callers use it when the data underneath the models changed out-of-band
// (e.g. a base table re-registered under the same name), so plan caches
// keyed on the generation re-plan instead of serving bindings made against
// the old data.
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
}

// Put registers a model set, replacing any previous set for the same key.
func (c *Catalog) Put(ms *core.ModelSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[ms.Key()] = ms
	c.gen++
}

// Get returns the model set with the exact key, or nil.
func (c *Catalog) Get(key string) *core.ModelSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.models[key]
}

// Lookup finds a model set able to answer a query over table tbl with
// predicate columns xcols, aggregate column ycol and optional group-by.
// A ycol equal to one of the predicate columns also matches a model set
// whose x column is that column (density-based aggregates need no R).
func (c *Catalog) Lookup(tbl string, xcols []string, ycol, groupBy string) *core.ModelSet {
	if ms := c.Get(core.Key(tbl, xcols, ycol, groupBy)); ms != nil {
		return ms
	}
	// Density-only fallback: any model set on the same table, same x
	// columns and group-by can answer aggregates over x itself. Members of
	// sharded ensembles are excluded — one shard covers one slice of the
	// domain and must only ever be served through LookupSharded's merge.
	var found *core.ModelSet
	if len(xcols) == 1 && ycol == xcols[0] {
		c.ScanTable(tbl, func(ms *core.ModelSet) bool {
			if ms.Shards <= 1 && ms.GroupBy == groupBy && len(ms.XCols) == 1 && ms.XCols[0] == xcols[0] {
				found = ms
				return false
			}
			return true
		})
	}
	return found
}

// LookupSharded finds the complete sharded ensemble able to answer a query
// over table tbl with predicate column xcol and aggregate column ycol: the
// Shards model sets of one ensemble, sorted by shard index. Like Lookup, a
// ycol equal to xcol falls back to any ensemble split on that column
// (density-based aggregates need no R). An incomplete ensemble — some
// shard keys missing or mixed shard counts — is never returned: serving a
// partial ensemble would silently drop part of the domain.
func (c *Catalog) LookupSharded(tbl, xcol, ycol string) []*core.ModelSet {
	exactMatch := c.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == xcol && ms.YCol == ycol
	})
	if exactMatch != nil {
		return exactMatch
	}
	if ycol != xcol {
		return nil
	}
	return c.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == xcol
	})
}

// LookupShardedAny finds a complete sharded ensemble on tbl whose x or y
// column matches col — the sharded analogue of the planner's predicate-free
// lookup. col "*" matches any ensemble.
func (c *Catalog) LookupShardedAny(tbl, col string) []*core.ModelSet {
	return c.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == col || ms.YCol == col || col == "*"
	})
}

// lookupShardedBy collects tbl's sharded univariate model sets accepted by
// match, buckets them by base key and shard count, and returns the first
// (by base key order) complete ensemble, sorted by shard index.
func (c *Catalog) lookupShardedBy(tbl string, match func(*core.ModelSet) bool) []*core.ModelSet {
	buckets := make(map[string][]*core.ModelSet)
	c.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.Shards > 1 && ms.GroupBy == "" && ms.NominalBy == "" &&
			len(ms.XCols) == 1 && ms.Uni != nil && match(ms) {
			b := fmt.Sprintf("%s@%d", ms.BaseKey(), ms.Shards)
			buckets[b] = append(buckets[b], ms)
		}
		return true
	})
	names := make([]string, 0, len(buckets))
	for b := range buckets {
		names = append(names, b)
	}
	sort.Strings(names)
	for _, b := range names {
		if sets := completeEnsemble(buckets[b]); sets != nil {
			return sets
		}
	}
	return nil
}

// completeEnsemble checks that sets covers shards 0..Shards-1 exactly once
// and returns them sorted by shard index, or nil.
func completeEnsemble(sets []*core.ModelSet) []*core.ModelSet {
	if len(sets) == 0 || len(sets) != sets[0].Shards {
		return nil
	}
	out := make([]*core.ModelSet, len(sets))
	for _, ms := range sets {
		if ms.Shard < 0 || ms.Shard >= len(out) || out[ms.Shard] != nil {
			return nil
		}
		out[ms.Shard] = ms
	}
	return out
}

// ReplaceShards atomically replaces every model set sharing the ensemble's
// base key — the previous ensemble whatever its shard count, and any plain
// unsharded set for the same column pair — with the given sets, under one
// generation bump. It returns the keys it removed (minus those re-added),
// so the caller can drop their staleness-ledger entries.
func (c *Catalog) ReplaceShards(sets []*core.ModelSet) []string {
	if len(sets) == 0 {
		return nil
	}
	base := sets[0].BaseKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	added := make(map[string]bool, len(sets))
	for _, ms := range sets {
		added[ms.Key()] = true
	}
	var removed []string
	for k, ms := range c.models {
		if ms.BaseKey() == base && !added[k] {
			delete(c.models, k)
			removed = append(removed, k)
		}
	}
	for _, ms := range sets {
		c.models[ms.Key()] = ms
	}
	c.gen++
	sort.Strings(removed)
	return removed
}

// ReplaceMember overwrites the model set whose exact key is already
// present, reporting whether it did. It is the per-shard refresh commit: a
// background retrain may race a TrainSharded that replaced the whole
// ensemble (possibly with a different shard count), and blindly Putting
// the finished member would resurrect a stray key from the dead ensemble —
// an incomplete ghost that SaveModels could no longer round-trip. If the
// key is gone, the retrain result is discarded.
func (c *Catalog) ReplaceMember(ms *core.ModelSet) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[ms.Key()]; !ok {
		return false
	}
	c.models[ms.Key()] = ms
	c.gen++
	return true
}

// LookupNominal finds a model set keyed by nominal values of nominalBy able
// to answer queries with an equality predicate on that column.
func (c *Catalog) LookupNominal(tbl, xcol, ycol, nominalBy string) *core.ModelSet {
	var found *core.ModelSet
	c.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.NominalBy != nominalBy || len(ms.XCols) != 1 || ms.XCols[0] != xcol {
			return true
		}
		if ms.YCol == ycol || ycol == xcol || ycol == "*" {
			found = ms
			return false
		}
		return true
	})
	return found
}

// Remove deletes the model set with the given key.
func (c *Catalog) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.models, key)
	c.gen++
}

// RemoveMatching deletes every model set accepted by match under one lock
// and one generation bump, returning the removed keys sorted. Callers
// dropping a sharded ensemble must match all its members — removing a
// subset would leave an incomplete ensemble that Load rejects.
func (c *Catalog) RemoveMatching(match func(*core.ModelSet) bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var removed []string
	for k, ms := range c.models {
		if match(ms) {
			delete(c.models, k)
			removed = append(removed, k)
		}
	}
	if len(removed) > 0 {
		c.gen++
	}
	sort.Strings(removed)
	return removed
}

// Scan visits every model set in sorted key order under a single read lock,
// stopping early when fn returns false. It replaces the Keys()+Get pattern,
// which took and released the lock once per model set.
func (c *Catalog) Scan(fn func(ms *core.ModelSet) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, k := range c.keysLocked() {
		if !fn(c.models[k]) {
			return
		}
	}
}

// ScanTable visits the model sets registered for table tbl in sorted key
// order, stopping early when fn returns false. It costs O(models on tbl)
// via the per-table index instead of O(catalog) like Scan; the index is
// rebuilt at most once per catalog generation.
func (c *Catalog) ScanTable(tbl string, fn func(ms *core.ModelSet) bool) {
	c.mu.RLock()
	if c.byTable == nil || c.idxGen != c.gen {
		c.mu.RUnlock()
		c.rebuildIndex()
		c.mu.RLock()
	}
	defer c.mu.RUnlock()
	for _, k := range c.byTable[tbl] {
		ms := c.models[k]
		if ms == nil || ms.Table != tbl {
			continue // index one mutation stale against a racing writer
		}
		if !fn(ms) {
			return
		}
	}
}

// rebuildIndex recomputes the per-table key index for the current
// generation. A writer that mutates the catalog between the caller's
// staleness check and this rebuild just leaves the index stale again;
// ScanTable tolerates that by re-checking each hit against the live map.
func (c *Catalog) rebuildIndex() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byTable != nil && c.idxGen == c.gen {
		return // another reader rebuilt it first
	}
	idx := make(map[string][]string)
	for k, ms := range c.models {
		idx[ms.Table] = append(idx[ms.Table], k)
	}
	for _, ks := range idx {
		sort.Strings(ks)
	}
	c.byTable = idx
	c.idxGen = c.gen
}

// Keys returns the sorted keys of all registered model sets.
func (c *Catalog) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.models))
	for k := range c.models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered model sets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.models)
}

// TotalBytes sums the serialized size of all model sets — the catalog's
// in-memory state footprint.
func (c *Catalog) TotalBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, ms := range c.models {
		total += ms.SizeBytes()
	}
	return total
}

// Save serializes the whole catalog to w.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sets := make([]*core.ModelSet, 0, len(c.models))
	for _, k := range c.keysLocked() {
		sets = append(sets, c.models[k])
	}
	return gob.NewEncoder(w).Encode(sets)
}

func (c *Catalog) keysLocked() []string {
	out := make([]string, 0, len(c.models))
	for k := range c.models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Load replaces the catalog contents with the sets serialized in r. A file
// whose shard-suffixed keys do not form complete ensembles — shards
// missing, or the same column pair saved under mixed shard counts — is
// rejected and the current catalog is left untouched: loading it would
// silently serve a partial ensemble that drops part of the x-domain.
func (c *Catalog) Load(r io.Reader) error {
	var sets []*core.ModelSet
	if err := gob.NewDecoder(r).Decode(&sets); err != nil {
		return fmt.Errorf("catalog: decode: %w", err)
	}
	models := make(map[string]*core.ModelSet, len(sets))
	for _, ms := range sets {
		models[ms.Key()] = ms
	}
	if err := validateShardEnsembles(models); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models = models
	c.gen++
	return nil
}

// validateShardEnsembles checks that every sharded ensemble in models is
// complete and internally consistent.
func validateShardEnsembles(models map[string]*core.ModelSet) error {
	type group struct {
		shards int
		seen   map[int]bool
	}
	groups := make(map[string]*group)
	for _, ms := range models {
		if ms.Shards <= 1 {
			continue
		}
		base := ms.BaseKey()
		g := groups[base]
		if g == nil {
			g = &group{shards: ms.Shards, seen: make(map[int]bool)}
			groups[base] = g
		}
		if g.shards != ms.Shards {
			return fmt.Errorf("catalog: ensemble %s mixes shard counts %d and %d; retrain it with one SHARDS value",
				base, g.shards, ms.Shards)
		}
		if ms.Shard < 0 || ms.Shard >= ms.Shards {
			return fmt.Errorf("catalog: ensemble %s has out-of-range shard index %d of %d", base, ms.Shard, ms.Shards)
		}
		g.seen[ms.Shard] = true
	}
	for base, g := range groups {
		if len(g.seen) != g.shards {
			return fmt.Errorf("catalog: ensemble %s is incomplete: %d of %d shards present; retrain it with TRAIN ... SHARDS %d",
				base, len(g.seen), g.shards, g.shards)
		}
	}
	return nil
}

// SaveFile persists the catalog to path.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile loads a catalog persisted by SaveFile.
func (c *Catalog) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}
