// Package catalog implements DBEst's model catalog (Fig. 1): the registry
// mapping column sets of tables to their trained models, with gob-based
// persistence and the model bundles of §2.3 ("Limitations") that let
// large-cardinality GROUP BY model collections spill to SSD and load on
// demand in ~100 ms.
//
// The catalog is split along the reader/writer axis: mutations (Put,
// Remove, ReplaceShards, Load, ...) run under a writer mutex against a
// builder map, and every mutation publishes a fresh immutable Snapshot
// through an atomic pointer. The read path — every lookup query planning
// does — goes through that snapshot and never takes a lock; see Snapshot.
package catalog

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"dbest/internal/core"
)

// Catalog is a concurrency-safe registry of trained model sets: the
// writer-side builder behind the atomically-published Snapshot the read
// path uses. Its read accessors (Get, Lookup*, Scan*, ...) delegate to the
// current snapshot and are lock-free; callers that need several reads to
// observe one consistent state should take one Snapshot() and read through
// it.
type Catalog struct {
	mu     sync.Mutex // serializes writers; never taken on the read path
	models map[string]*core.ModelSet
	gen    uint64

	// snap is the published immutable view; rebuilds counts publications.
	snap      atomic.Pointer[Snapshot]
	rebuilds  atomic.Uint64
	onPublish func(*Snapshot)
}

// New creates an empty catalog.
func New() *Catalog {
	c := &Catalog{models: make(map[string]*core.ModelSet)}
	c.snap.Store(&Snapshot{models: map[string]*core.ModelSet{}, byTable: map[string][]string{}})
	return c
}

// Snapshot returns the current published view. The returned snapshot is
// immutable: concurrent mutations publish fresh snapshots and never touch
// ones already handed out.
func (c *Catalog) Snapshot() *Snapshot { return c.snap.Load() }

// OnPublish registers fn to run after every snapshot publication, while the
// writer mutex is still held — publications are therefore delivered to fn
// strictly in generation order. The engine uses it to fold fresh catalog
// snapshots into its own read-path snapshot. fn must not call back into the
// catalog's mutating methods. Set it before the catalog is shared.
func (c *Catalog) OnPublish(fn func(*Snapshot)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPublish = fn
}

// Rebuilds reports how many snapshots the catalog has published — the
// write-side cost of the lock-free read path, one O(models) rebuild per
// mutation.
func (c *Catalog) Rebuilds() uint64 { return c.rebuilds.Load() }

// publishLocked builds and publishes a fresh snapshot of the builder state.
// Caller holds c.mu.
func (c *Catalog) publishLocked() {
	models := make(map[string]*core.ModelSet, len(c.models))
	byTable := make(map[string][]string)
	for k, ms := range c.models {
		models[k] = ms
		byTable[ms.Table] = append(byTable[ms.Table], k)
	}
	for _, ks := range byTable {
		sort.Strings(ks)
	}
	s := &Snapshot{gen: c.gen, models: models, byTable: byTable}
	c.snap.Store(s)
	c.rebuilds.Add(1)
	if c.onPublish != nil {
		c.onPublish(s)
	}
}

// Generation returns a counter that increases on every catalog mutation
// (Put, Remove, Load). Callers that cache plans derived from catalog
// contents compare generations to detect staleness without re-scanning.
func (c *Catalog) Generation() uint64 { return c.Snapshot().gen }

// Invalidate bumps the generation without changing the catalog contents.
// Callers use it when the data underneath the models changed out-of-band
// (e.g. a base table re-registered under the same name), so plan caches
// keyed on the generation re-plan instead of serving bindings made against
// the old data.
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.publishLocked()
}

// Put registers a model set, replacing any previous set for the same key.
func (c *Catalog) Put(ms *core.ModelSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[ms.Key()] = ms
	c.gen++
	c.publishLocked()
}

// Get returns the model set with the exact key, or nil.
func (c *Catalog) Get(key string) *core.ModelSet { return c.Snapshot().Get(key) }

// Lookup finds a model set able to answer a query over table tbl; see
// Snapshot.Lookup.
func (c *Catalog) Lookup(tbl string, xcols []string, ycol, groupBy string) *core.ModelSet {
	return c.Snapshot().Lookup(tbl, xcols, ycol, groupBy)
}

// LookupSharded finds the complete sharded ensemble for (tbl, xcol, ycol);
// see Snapshot.LookupSharded.
func (c *Catalog) LookupSharded(tbl, xcol, ycol string) []*core.ModelSet {
	return c.Snapshot().LookupSharded(tbl, xcol, ycol)
}

// LookupShardedAny finds a complete sharded ensemble on tbl matching col;
// see Snapshot.LookupShardedAny.
func (c *Catalog) LookupShardedAny(tbl, col string) []*core.ModelSet {
	return c.Snapshot().LookupShardedAny(tbl, col)
}

// LookupNominal finds a model set keyed by nominal values of nominalBy; see
// Snapshot.LookupNominal.
func (c *Catalog) LookupNominal(tbl, xcol, ycol, nominalBy string) *core.ModelSet {
	return c.Snapshot().LookupNominal(tbl, xcol, ycol, nominalBy)
}

// completeEnsemble checks that sets covers shards 0..Shards-1 exactly once
// and returns them sorted by shard index, or nil.
func completeEnsemble(sets []*core.ModelSet) []*core.ModelSet {
	if len(sets) == 0 || len(sets) != sets[0].Shards {
		return nil
	}
	out := make([]*core.ModelSet, len(sets))
	for _, ms := range sets {
		if ms.Shard < 0 || ms.Shard >= len(out) || out[ms.Shard] != nil {
			return nil
		}
		out[ms.Shard] = ms
	}
	return out
}

// ReplaceShards atomically replaces every model set sharing the ensemble's
// base key — the previous ensemble whatever its shard count, and any plain
// unsharded set for the same column pair — with the given sets, under one
// generation bump. It returns the keys it removed (minus those re-added),
// so the caller can drop their staleness-ledger entries.
func (c *Catalog) ReplaceShards(sets []*core.ModelSet) []string {
	if len(sets) == 0 {
		return nil
	}
	base := sets[0].BaseKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	added := make(map[string]bool, len(sets))
	for _, ms := range sets {
		added[ms.Key()] = true
	}
	var removed []string
	for k, ms := range c.models {
		if ms.BaseKey() == base && !added[k] {
			delete(c.models, k)
			removed = append(removed, k)
		}
	}
	for _, ms := range sets {
		c.models[ms.Key()] = ms
	}
	c.gen++
	c.publishLocked()
	sort.Strings(removed)
	return removed
}

// ReplaceMember overwrites the model set whose exact key is already
// present, reporting whether it did. It is the per-shard refresh commit: a
// background retrain may race a TrainSharded that replaced the whole
// ensemble (possibly with a different shard count), and blindly Putting
// the finished member would resurrect a stray key from the dead ensemble —
// an incomplete ghost that SaveModels could no longer round-trip. If the
// key is gone, the retrain result is discarded.
func (c *Catalog) ReplaceMember(ms *core.ModelSet) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[ms.Key()]; !ok {
		return false
	}
	c.models[ms.Key()] = ms
	c.gen++
	c.publishLocked()
	return true
}

// Remove deletes the model set with the given key.
func (c *Catalog) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.models, key)
	c.gen++
	c.publishLocked()
}

// RemoveMatching deletes every model set accepted by match under one lock
// and one generation bump, returning the removed keys sorted. Callers
// dropping a sharded ensemble must match all its members — removing a
// subset would leave an incomplete ensemble that Load rejects.
func (c *Catalog) RemoveMatching(match func(ms *core.ModelSet) bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var removed []string
	for k, ms := range c.models {
		if match(ms) {
			delete(c.models, k)
			removed = append(removed, k)
		}
	}
	if len(removed) > 0 {
		c.gen++
		c.publishLocked()
	}
	sort.Strings(removed)
	return removed
}

// Scan visits every model set in sorted key order against the current
// snapshot, stopping early when fn returns false.
func (c *Catalog) Scan(fn func(ms *core.ModelSet) bool) { c.Snapshot().Scan(fn) }

// ScanTable visits the model sets registered for table tbl in sorted key
// order against the current snapshot, stopping early when fn returns false.
func (c *Catalog) ScanTable(tbl string, fn func(ms *core.ModelSet) bool) {
	c.Snapshot().ScanTable(tbl, fn)
}

// Keys returns the sorted keys of all registered model sets.
func (c *Catalog) Keys() []string { return c.Snapshot().Keys() }

// Len returns the number of registered model sets.
func (c *Catalog) Len() int { return c.Snapshot().Len() }

// TotalBytes sums the serialized size of all model sets — the catalog's
// in-memory state footprint.
func (c *Catalog) TotalBytes() int { return c.Snapshot().TotalBytes() }

// Save serializes the whole catalog to w, as of the current snapshot.
func (c *Catalog) Save(w io.Writer) error {
	s := c.Snapshot()
	sets := make([]*core.ModelSet, 0, s.Len())
	for _, k := range s.Keys() {
		sets = append(sets, s.Get(k))
	}
	return gob.NewEncoder(w).Encode(sets)
}

// Load replaces the catalog contents with the sets serialized in r. A file
// whose shard-suffixed keys do not form complete ensembles — shards
// missing, or the same column pair saved under mixed shard counts — is
// rejected and the current catalog is left untouched: loading it would
// silently serve a partial ensemble that drops part of the x-domain.
func (c *Catalog) Load(r io.Reader) error {
	var sets []*core.ModelSet
	if err := gob.NewDecoder(r).Decode(&sets); err != nil {
		return fmt.Errorf("catalog: decode: %w", err)
	}
	models := make(map[string]*core.ModelSet, len(sets))
	for _, ms := range sets {
		models[ms.Key()] = ms
	}
	if err := validateShardEnsembles(models); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models = models
	c.gen++
	c.publishLocked()
	return nil
}

// validateShardEnsembles checks that every sharded ensemble in models is
// complete and internally consistent.
func validateShardEnsembles(models map[string]*core.ModelSet) error {
	type group struct {
		shards int
		seen   map[int]bool
	}
	groups := make(map[string]*group)
	for _, ms := range models {
		if ms.Shards <= 1 {
			continue
		}
		base := ms.BaseKey()
		g := groups[base]
		if g == nil {
			g = &group{shards: ms.Shards, seen: make(map[int]bool)}
			groups[base] = g
		}
		if g.shards != ms.Shards {
			return fmt.Errorf("catalog: ensemble %s mixes shard counts %d and %d; retrain it with one SHARDS value",
				base, g.shards, ms.Shards)
		}
		if ms.Shard < 0 || ms.Shard >= ms.Shards {
			return fmt.Errorf("catalog: ensemble %s has out-of-range shard index %d of %d", base, ms.Shard, ms.Shards)
		}
		g.seen[ms.Shard] = true
	}
	for base, g := range groups {
		if len(g.seen) != g.shards {
			return fmt.Errorf("catalog: ensemble %s is incomplete: %d of %d shards present; retrain it with TRAIN ... SHARDS %d",
				base, len(g.seen), g.shards, g.shards)
		}
	}
	return nil
}

// SaveFile persists the catalog to path.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile loads a catalog persisted by SaveFile.
func (c *Catalog) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}
