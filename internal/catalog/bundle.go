package catalog

import (
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"dbest/internal/core"
)

// Bundle packages one model set for on-disk (SSD) storage — the paper's
// "model bundles, each of which bundles all the models needed by a query
// with a large number of groups" (§2.3 Limitations). The workflow is:
// serialize large-group model sets with WriteBundle, drop them from memory,
// and ReadBundle on demand; the paper measures <132 ms to load and
// deserialize a 500-group bundle. The set's persisted declarative spec
// (ModelSet.Spec) rides along, so a bundled model re-registered with an
// engine stays refreshable like any catalog-loaded one.
type Bundle struct {
	Key string
	Set *core.ModelSet
}

// BundleStats reports bundle I/O measurements for the §2.3 experiment.
type BundleStats struct {
	Bytes     int
	WriteTime time.Duration
	ReadTime  time.Duration
	NumModels int
	// HasSpec reports whether the bundled set carries its persisted model
	// spec (models trained through CreateModel do; pre-spec bundles don't).
	HasSpec bool
}

// WriteBundle serializes the model set to path and reports its size.
func WriteBundle(path string, ms *core.ModelSet) (BundleStats, error) {
	var st BundleStats
	t0 := time.Now()
	f, err := os.Create(path)
	if err != nil {
		return st, err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&Bundle{Key: ms.Key(), Set: ms}); err != nil {
		return st, fmt.Errorf("catalog: encode bundle: %w", err)
	}
	if err := f.Sync(); err != nil {
		return st, err
	}
	info, err := f.Stat()
	if err != nil {
		return st, err
	}
	st.Bytes = int(info.Size())
	st.WriteTime = time.Since(t0)
	st.NumModels = ms.NumModels()
	st.HasSpec = len(ms.Spec) > 0
	return st, nil
}

// ReadBundle loads a bundle from path, reporting deserialization time.
func ReadBundle(path string) (*core.ModelSet, BundleStats, error) {
	var st BundleStats
	t0 := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, st, err
	}
	defer f.Close()
	var b Bundle
	if err := gob.NewDecoder(f).Decode(&b); err != nil {
		return nil, st, fmt.Errorf("catalog: decode bundle: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		return nil, st, err
	}
	st.Bytes = int(info.Size())
	st.ReadTime = time.Since(t0)
	st.NumModels = b.Set.NumModels()
	st.HasSpec = len(b.Set.Spec) > 0
	return b.Set, st, nil
}
