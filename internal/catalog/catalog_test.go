package catalog

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/table"
)

func trainedSet(t *testing.T, name string, groupBy string) *core.ModelSet {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	gs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = 3*xs[i] + rng.NormFloat64()
		gs[i] = int64(i % 3)
	}
	tb := table.New(name)
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddIntColumn("g", gs)
	ms, err := core.Train(tb, []string{"x"}, "y", &core.TrainConfig{
		SampleSize: 1000, Seed: 1, GroupBy: groupBy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestPutGetLookup(t *testing.T) {
	c := New()
	ms := trainedSet(t, "t1", "")
	c.Put(ms)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Get(ms.Key()); got != ms {
		t.Fatal("Get by key failed")
	}
	if got := c.Lookup("t1", []string{"x"}, "y", ""); got != ms {
		t.Fatal("Lookup failed")
	}
	if got := c.Lookup("t1", []string{"x"}, "z", ""); got != nil {
		t.Fatal("Lookup should miss for unknown y")
	}
	if got := c.Lookup("other", []string{"x"}, "y", ""); got != nil {
		t.Fatal("Lookup should miss for unknown table")
	}
}

func TestLookupDensityFallback(t *testing.T) {
	// A query aggregating the predicate column itself (e.g. VARIANCE(x)
	// WHERE x BETWEEN ...) can be served by any model set over x.
	c := New()
	ms := trainedSet(t, "t1", "")
	c.Put(ms)
	if got := c.Lookup("t1", []string{"x"}, "x", ""); got != ms {
		t.Fatal("density-only fallback failed")
	}
	if got := c.Lookup("t1", []string{"x"}, "x", "g"); got != nil {
		t.Fatal("fallback must respect group-by")
	}
}

func TestRemoveAndKeys(t *testing.T) {
	c := New()
	a := trainedSet(t, "a", "")
	b := trainedSet(t, "b", "")
	c.Put(a)
	c.Put(b)
	keys := c.Keys()
	if len(keys) != 2 || keys[0] > keys[1] {
		t.Fatalf("Keys = %v", keys)
	}
	c.Remove(a.Key())
	if c.Len() != 1 || c.Get(a.Key()) != nil {
		t.Fatal("Remove failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	ms := trainedSet(t, "t1", "")
	c.Put(ms)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := c2.Get(ms.Key())
	if got == nil {
		t.Fatal("loaded catalog missing model set")
	}
	// The deserialized models must answer queries identically.
	want, err := ms.EvaluateUni(exact.Avg, 2, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.EvaluateUni(exact.Avg, 2, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.Value-have.Value) > 1e-12 {
		t.Fatalf("answers differ after round trip: %v vs %v", want.Value, have.Value)
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := New()
	c.Put(trainedSet(t, "t1", "g"))
	path := t.TempDir() + "/catalog.gob"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d", c2.Len())
	}
	if err := c2.LoadFile(path + ".missing"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLoadGarbage(t *testing.T) {
	c := New()
	if err := c.Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("want decode error")
	}
}

func TestTotalBytes(t *testing.T) {
	c := New()
	if c.TotalBytes() != 0 {
		t.Fatal("empty catalog should have zero bytes")
	}
	c.Put(trainedSet(t, "t1", ""))
	if c.TotalBytes() <= 0 {
		t.Fatal("TotalBytes must be positive")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	ms := trainedSet(t, "t1", "g")
	path := t.TempDir() + "/bundle.gob"
	wst, err := WriteBundle(path, ms)
	if err != nil {
		t.Fatal(err)
	}
	if wst.Bytes <= 0 || wst.NumModels != ms.NumModels() {
		t.Fatalf("write stats = %+v", wst)
	}
	got, rst, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Bytes != wst.Bytes {
		t.Fatalf("size mismatch: %d vs %d", rst.Bytes, wst.Bytes)
	}
	if got.Key() != ms.Key() {
		t.Fatalf("key = %q, want %q", got.Key(), ms.Key())
	}
	// Loaded per-group models answer like the originals.
	want, _ := ms.EvaluateUni(exact.Count, 2, 8, false, nil)
	have, err := got.EvaluateUni(exact.Count, 2, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Groups) != len(have.Groups) {
		t.Fatal("group answers differ after bundle round trip")
	}
	for i := range want.Groups {
		if math.Abs(want.Groups[i].Value-have.Groups[i].Value) > 1e-12 {
			t.Fatal("group values differ after bundle round trip")
		}
	}
	if _, _, err := ReadBundle(path + ".missing"); err == nil {
		t.Fatal("want error for missing bundle")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	ms := trainedSet(t, "t1", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Put(ms)
				_ = c.Get(ms.Key())
				_ = c.Lookup("t1", []string{"x"}, "y", "")
				_ = c.Keys()
				_ = c.Len()
			}
		}()
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestGeneration(t *testing.T) {
	c := New()
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	ms := trainedSet(t, "t1", "")
	c.Put(ms)
	g1 := c.Generation()
	if g1 == 0 {
		t.Fatal("Put must bump the generation")
	}
	c.Remove(ms.Key())
	g2 := c.Generation()
	if g2 <= g1 {
		t.Fatalf("Remove must bump the generation: %d -> %d", g1, g2)
	}

	// Load bumps too, even when it installs identical contents: plans
	// derived from the old catalog must not survive a wholesale replace.
	full := New()
	full.Put(trainedSet(t, "t2", ""))
	var buf bytes.Buffer
	if err := full.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if g3 := c.Generation(); g3 <= g2 {
		t.Fatalf("Load must bump the generation: %d -> %d", g2, g3)
	}
}

func TestScan(t *testing.T) {
	c := New()
	a := trainedSet(t, "a", "")
	b := trainedSet(t, "b", "")
	c.Put(b)
	c.Put(a)

	var seen []string
	c.Scan(func(ms *core.ModelSet) bool {
		seen = append(seen, ms.Key())
		return true
	})
	if len(seen) != 2 || seen[0] > seen[1] {
		t.Fatalf("Scan order = %v, want sorted keys", seen)
	}

	// Returning false stops the scan early.
	count := 0
	c.Scan(func(ms *core.ModelSet) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop scan visited %d sets, want 1", count)
	}
}

// fakeSet builds a minimal model set for index tests without training.
func fakeSet(tbl, xcol, ycol string) *core.ModelSet {
	return &core.ModelSet{Table: tbl, XCols: []string{xcol}, YCol: ycol}
}

func TestScanTableVisitsOnlyThatTable(t *testing.T) {
	c := New()
	a1 := fakeSet("a", "x", "y")
	a2 := fakeSet("a", "x", "z")
	b1 := fakeSet("b", "x", "y")
	c.Put(a1)
	c.Put(a2)
	c.Put(b1)

	var keys []string
	c.ScanTable("a", func(ms *core.ModelSet) bool {
		if ms.Table != "a" {
			t.Fatalf("ScanTable(a) visited table %q", ms.Table)
		}
		keys = append(keys, ms.Key())
		return true
	})
	if len(keys) != 2 {
		t.Fatalf("ScanTable(a) visited %d sets, want 2", len(keys))
	}
	// Sorted key order, like Scan.
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("ScanTable order not sorted: %v", keys)
	}
	// Early stop.
	n := 0
	c.ScanTable("a", func(ms *core.ModelSet) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	// Unknown table: no visits.
	c.ScanTable("zzz", func(ms *core.ModelSet) bool { t.Fatal("visited"); return true })
}

func TestScanTableIndexInvalidation(t *testing.T) {
	c := New()
	c.Put(fakeSet("a", "x", "y"))
	count := func() int {
		n := 0
		c.ScanTable("a", func(*core.ModelSet) bool { n++; return true })
		return n
	}
	if got := count(); got != 1 {
		t.Fatalf("initial = %d", got)
	}
	// Put after the index was built: generation bump must invalidate it.
	ms2 := fakeSet("a", "x", "z")
	c.Put(ms2)
	if got := count(); got != 2 {
		t.Fatalf("after Put = %d, want 2", got)
	}
	c.Remove(ms2.Key())
	if got := count(); got != 1 {
		t.Fatalf("after Remove = %d, want 1", got)
	}
	// Load replaces contents wholesale.
	var buf bytes.Buffer
	src := New()
	src.Put(fakeSet("a", "q", "r"))
	src.Put(fakeSet("a", "s", "u"))
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 2 {
		t.Fatalf("after Load = %d, want 2", got)
	}
}

// TestScanTableConcurrent exercises the lazy index rebuild under -race:
// readers rebuilding concurrently with writers invalidating.
func TestScanTableConcurrent(t *testing.T) {
	c := New()
	c.Put(fakeSet("a", "x", "y"))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.ScanTable("a", func(ms *core.ModelSet) bool { return true })
				c.LookupNominal("a", "x", "y", "nom")
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ms := fakeSet("a", "x", "y")
		c.Put(ms)
		if i%3 == 0 {
			c.Remove(ms.Key())
		}
	}
	close(stop)
	wg.Wait()
}

func TestInvalidateBumpsGenerationWithoutMutation(t *testing.T) {
	c := New()
	ms := trainedSet(t, "t1", "")
	c.Put(ms)
	g0 := c.Generation()
	n0 := c.Len()
	c.Invalidate()
	if got := c.Generation(); got != g0+1 {
		t.Fatalf("Generation = %d after Invalidate, want %d", got, g0+1)
	}
	if c.Len() != n0 {
		t.Fatalf("Len changed by Invalidate: %d -> %d", n0, c.Len())
	}
	if c.Get(ms.Key()) == nil {
		t.Fatal("Invalidate dropped catalog contents")
	}
}

// shardSet builds a minimal sharded model-set member for catalog tests.
func shardSet(tbl, x, y string, i, k int) *core.ModelSet {
	return &core.ModelSet{
		Table: tbl, XCols: []string{x}, YCol: y, N: 100,
		Uni:   &core.UniModel{XCol: x, YCol: y, N: 100},
		Shard: i, Shards: k,
		ShardLo: float64(i * 10), ShardHi: float64((i + 1) * 10),
	}
}

func shardEnsemble(tbl, x, y string, k int) []*core.ModelSet {
	sets := make([]*core.ModelSet, k)
	for i := range sets {
		sets[i] = shardSet(tbl, x, y, i, k)
	}
	return sets
}

func TestLookupSharded(t *testing.T) {
	c := New()
	for _, ms := range shardEnsemble("t", "x", "y", 4) {
		c.Put(ms)
	}
	sets := c.LookupSharded("t", "x", "y")
	if len(sets) != 4 {
		t.Fatalf("LookupSharded = %d sets, want 4", len(sets))
	}
	for i, ms := range sets {
		if ms.Shard != i {
			t.Fatalf("sets not in shard order: %d at %d", ms.Shard, i)
		}
	}
	// Density fallback: aggregates over the split column itself match.
	if got := c.LookupSharded("t", "x", "x"); len(got) != 4 {
		t.Fatalf("density fallback = %d sets, want 4", len(got))
	}
	if got := c.LookupSharded("t", "x", "z"); got != nil {
		t.Fatal("LookupSharded must miss for an unknown y column")
	}
	if got := c.LookupShardedAny("t", "y"); len(got) != 4 {
		t.Fatalf("LookupShardedAny(y) = %d sets, want 4", len(got))
	}
	if got := c.LookupShardedAny("t", "*"); len(got) != 4 {
		t.Fatalf("LookupShardedAny(*) = %d sets, want 4", len(got))
	}
	// An incomplete ensemble must never be served.
	c.Remove(shardSet("t", "x", "y", 2, 4).Key())
	if got := c.LookupSharded("t", "x", "y"); got != nil {
		t.Fatalf("LookupSharded returned a partial ensemble: %d sets", len(got))
	}
}

func TestReplaceShards(t *testing.T) {
	c := New()
	// A plain unsharded set for the same pair, plus an old K=2 ensemble.
	plain := &core.ModelSet{Table: "t", XCols: []string{"x"}, YCol: "y", N: 1,
		Uni: &core.UniModel{XCol: "x", YCol: "y", N: 1}}
	c.Put(plain)
	for _, ms := range shardEnsemble("t", "x", "y", 2) {
		c.Put(ms)
	}
	other := trainedSet(t, "t2", "")
	c.Put(other)
	gen := c.Generation()

	removed := c.ReplaceShards(shardEnsemble("t", "x", "y", 4))
	if len(removed) != 3 { // plain + 2 old shards
		t.Fatalf("removed = %v, want plain key and both K=2 shard keys", removed)
	}
	if c.Generation() != gen+1 {
		t.Fatalf("generation bumped %d times, want exactly once", c.Generation()-gen)
	}
	if got := c.LookupSharded("t", "x", "y"); len(got) != 4 {
		t.Fatalf("after replace: %d sets, want 4", len(got))
	}
	if c.Get(plain.Key()) != nil {
		t.Fatal("plain set for the same pair must be replaced by the ensemble")
	}
	if c.Get(other.Key()) == nil {
		t.Fatal("unrelated model sets must survive ReplaceShards")
	}
}

// TestLoadRejectsPartialShardEnsembles: a persisted catalog with an
// incomplete or mixed-shard-count ensemble must be rejected wholesale,
// leaving the current catalog intact.
func TestLoadRejectsPartialShardEnsembles(t *testing.T) {
	save := func(c *Catalog) []byte {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Complete ensemble round-trips.
	c := New()
	for _, ms := range shardEnsemble("t", "x", "y", 4) {
		c.Put(ms)
	}
	dst := New()
	if err := dst.Load(bytes.NewReader(save(c))); err != nil {
		t.Fatalf("complete ensemble rejected: %v", err)
	}
	if got := dst.LookupSharded("t", "x", "y"); len(got) != 4 {
		t.Fatalf("round trip lost shards: %d of 4", len(got))
	}

	// Missing shard: rejected, destination untouched.
	c.Remove(shardSet("t", "x", "y", 1, 4).Key())
	partial := save(c)
	if err := dst.Load(bytes.NewReader(partial)); err == nil {
		t.Fatal("want error loading a partial ensemble")
	}
	if got := dst.LookupSharded("t", "x", "y"); len(got) != 4 {
		t.Fatal("failed load must leave the previous catalog intact")
	}

	// Mixed shard counts for one base key: rejected.
	c2 := New()
	for _, ms := range shardEnsemble("t", "x", "y", 2) {
		c2.Put(ms)
	}
	c2.Put(shardSet("t", "x", "y", 2, 4))
	if err := dst.Load(bytes.NewReader(save(c2))); err == nil {
		t.Fatal("want error loading mixed shard counts")
	}
}

// TestReplaceMemberGuardsStaleRetrains: a per-shard retrain finishing
// after its ensemble was replaced must not resurrect the dead key.
func TestReplaceMemberGuardsStaleRetrains(t *testing.T) {
	c := New()
	for _, ms := range shardEnsemble("t", "x", "y", 2) {
		c.Put(ms)
	}
	// In-place refresh of a live member succeeds and bumps the generation.
	gen := c.Generation()
	fresh := shardSet("t", "x", "y", 1, 2)
	if !c.ReplaceMember(fresh) {
		t.Fatal("refresh of a live member must succeed")
	}
	if c.Get(fresh.Key()) != fresh || c.Generation() != gen+1 {
		t.Fatal("member not swapped in")
	}
	// The ensemble is replaced with K=4; a K=2 retrain result must be
	// discarded, leaving the catalog exactly the 4 new keys.
	c.ReplaceShards(shardEnsemble("t", "x", "y", 4))
	if c.ReplaceMember(shardSet("t", "x", "y", 1, 2)) {
		t.Fatal("retrain of a dead ensemble member must be discarded")
	}
	if c.Len() != 4 {
		t.Fatalf("catalog has %d sets, want 4", c.Len())
	}
}
