package catalog

import (
	"fmt"
	"sort"

	"dbest/internal/core"
)

// Snapshot is an immutable point-in-time view of the catalog: the model
// sets, the per-table key index and the generation they were published
// under. Snapshots are built by the writer side under the catalog mutex and
// published through an atomic pointer, so the read path — every catalog
// lookup a query makes — resolves against one consistent view without
// taking any lock. A reader that loaded a snapshot keeps a fully coherent
// catalog for as long as it holds the pointer; concurrent mutations publish
// fresh snapshots without disturbing it, and an abandoned snapshot is
// garbage-collected once the last in-flight query drops it.
type Snapshot struct {
	gen     uint64
	models  map[string]*core.ModelSet
	byTable map[string][]string // sorted model-set keys per table
}

// Generation reports the catalog generation this snapshot was published
// under. It increases on every catalog mutation (Put, Remove, Load,
// Invalidate), so plan caches compare generations to detect staleness.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Get returns the model set with the exact key, or nil.
func (s *Snapshot) Get(key string) *core.ModelSet { return s.models[key] }

// Len reports the number of registered model sets.
func (s *Snapshot) Len() int { return len(s.models) }

// Keys returns the sorted keys of all registered model sets.
func (s *Snapshot) Keys() []string {
	out := make([]string, 0, len(s.models))
	for k := range s.models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the serialized size of all model sets — the catalog's
// in-memory state footprint.
func (s *Snapshot) TotalBytes() int {
	total := 0
	for _, ms := range s.models {
		total += ms.SizeBytes()
	}
	return total
}

// Scan visits every model set in sorted key order, stopping early when fn
// returns false.
func (s *Snapshot) Scan(fn func(ms *core.ModelSet) bool) {
	for _, k := range s.Keys() {
		if !fn(s.models[k]) {
			return
		}
	}
}

// ScanTable visits the model sets registered for table tbl in sorted key
// order, stopping early when fn returns false. It costs O(models on tbl)
// via the per-table index instead of O(catalog) like Scan; the index is
// built once at publish time, so unlike the old locked catalog there is no
// lazy rebuild (and no staleness re-check) on the read path.
func (s *Snapshot) ScanTable(tbl string, fn func(ms *core.ModelSet) bool) {
	for _, k := range s.byTable[tbl] {
		if !fn(s.models[k]) {
			return
		}
	}
}

// Lookup finds a model set able to answer a query over table tbl with
// predicate columns xcols, aggregate column ycol and optional group-by.
// A ycol equal to one of the predicate columns also matches a model set
// whose x column is that column (density-based aggregates need no R).
func (s *Snapshot) Lookup(tbl string, xcols []string, ycol, groupBy string) *core.ModelSet {
	if ms := s.Get(core.Key(tbl, xcols, ycol, groupBy)); ms != nil {
		return ms
	}
	// Density-only fallback: any model set on the same table, same x
	// columns and group-by can answer aggregates over x itself. Members of
	// sharded ensembles are excluded — one shard covers one slice of the
	// domain and must only ever be served through LookupSharded's merge —
	// and so are sketch sets, which carry no density model at all.
	var found *core.ModelSet
	if len(xcols) == 1 && ycol == xcols[0] {
		s.ScanTable(tbl, func(ms *core.ModelSet) bool {
			if ms.Sketch == nil && ms.Shards <= 1 && ms.GroupBy == groupBy &&
				len(ms.XCols) == 1 && ms.XCols[0] == xcols[0] {
				found = ms
				return false
			}
			return true
		})
	}
	return found
}

// LookupSketch finds the sketch set of the given kind over table tbl and
// column col, or nil.
func (s *Snapshot) LookupSketch(tbl, col, kind string) *core.ModelSet {
	return s.Get(core.Key(tbl, []string{col}, "", "sketch:"+kind))
}

// LookupSharded finds the complete sharded ensemble able to answer a query
// over table tbl with predicate column xcol and aggregate column ycol: the
// Shards model sets of one ensemble, sorted by shard index. Like Lookup, a
// ycol equal to xcol falls back to any ensemble split on that column
// (density-based aggregates need no R). An incomplete ensemble — some
// shard keys missing or mixed shard counts — is never returned: serving a
// partial ensemble would silently drop part of the domain.
func (s *Snapshot) LookupSharded(tbl, xcol, ycol string) []*core.ModelSet {
	exactMatch := s.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == xcol && ms.YCol == ycol
	})
	if exactMatch != nil {
		return exactMatch
	}
	if ycol != xcol {
		return nil
	}
	return s.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == xcol
	})
}

// LookupShardedAny finds a complete sharded ensemble on tbl whose x or y
// column matches col — the sharded analogue of the planner's predicate-free
// lookup. col "*" matches any ensemble.
func (s *Snapshot) LookupShardedAny(tbl, col string) []*core.ModelSet {
	return s.lookupShardedBy(tbl, func(ms *core.ModelSet) bool {
		return ms.XCols[0] == col || ms.YCol == col || col == "*"
	})
}

// lookupShardedBy collects tbl's sharded univariate model sets accepted by
// match, buckets them by base key and shard count, and returns the first
// (by base key order) complete ensemble, sorted by shard index.
func (s *Snapshot) lookupShardedBy(tbl string, match func(*core.ModelSet) bool) []*core.ModelSet {
	buckets := make(map[string][]*core.ModelSet)
	s.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.Shards > 1 && ms.GroupBy == "" && ms.NominalBy == "" &&
			len(ms.XCols) == 1 && ms.Uni != nil && match(ms) {
			b := fmt.Sprintf("%s@%d", ms.BaseKey(), ms.Shards)
			buckets[b] = append(buckets[b], ms)
		}
		return true
	})
	names := make([]string, 0, len(buckets))
	for b := range buckets {
		names = append(names, b)
	}
	sort.Strings(names)
	for _, b := range names {
		if sets := completeEnsemble(buckets[b]); sets != nil {
			return sets
		}
	}
	return nil
}

// LookupNominal finds a model set keyed by nominal values of nominalBy able
// to answer queries with an equality predicate on that column.
func (s *Snapshot) LookupNominal(tbl, xcol, ycol, nominalBy string) *core.ModelSet {
	var found *core.ModelSet
	s.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.NominalBy != nominalBy || len(ms.XCols) != 1 || ms.XCols[0] != xcol {
			return true
		}
		if ms.YCol == ycol || ycol == xcol || ycol == "*" {
			found = ms
			return false
		}
		return true
	})
	return found
}
