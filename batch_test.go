package dbest_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

// TestQueryBatchDeterminism: a batch must answer exactly what the same
// queries answer when run sequentially — mixed shapes, model and exact
// paths, repeated shapes, and a GROUP BY.
func TestQueryBatchDeterminism(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 40000, Stores: 8, Seed: 9})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 4000, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 3000, Seed: 9, GroupBy: "ss_store_sk"}); err != nil {
		t.Fatal(err)
	}

	var sqls []string
	for i := 0; i < 16; i++ {
		lo := 100 + 25*i
		sqls = append(sqls,
			fmt.Sprintf("SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN %d AND %d", lo, lo+200))
	}
	sqls = append(sqls,
		// Repeated shape: must hit the plan-dedup path.
		sqls[0],
		"SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600",
		// GROUP BY over the grouped model set.
		"SELECT SUM(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600 GROUP BY ss_store_sk",
		// Unmodeled column: exact path.
		"SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 5 AND 10",
	)

	want := make([]*dbest.Result, len(sqls))
	for i, sql := range sqls {
		res, err := eng.Query(sql)
		if err != nil {
			t.Fatalf("sequential %q: %v", sql, err)
		}
		want[i] = res
	}

	got := eng.QueryBatch(sqls)
	if len(got) != len(sqls) {
		t.Fatalf("batch returned %d results for %d queries", len(got), len(sqls))
	}
	for i, br := range got {
		if br.Err != nil {
			t.Fatalf("batch[%d] %q: %v", i, sqls[i], br.Err)
		}
		if br.SQL != sqls[i] {
			t.Fatalf("batch[%d].SQL = %q, want %q", i, br.SQL, sqls[i])
		}
		w, g := want[i], br.Result
		if g.Source != w.Source || len(g.Aggregates) != len(w.Aggregates) {
			t.Fatalf("batch[%d]: got %+v, want %+v", i, g, w)
		}
		for j := range g.Aggregates {
			ga, wa := g.Aggregates[j], w.Aggregates[j]
			if ga.Name != wa.Name || ga.Value != wa.Value || len(ga.Groups) != len(wa.Groups) {
				t.Fatalf("batch[%d] agg %d: got %+v, want %+v", i, j, ga, wa)
			}
			for k := range ga.Groups {
				if ga.Groups[k] != wa.Groups[k] {
					t.Fatalf("batch[%d] agg %d group %d: got %+v, want %+v",
						i, j, k, ga.Groups[k], wa.Groups[k])
				}
			}
		}
	}
}

// TestQueryBatchElapsedStamped: every batch item must report its own
// shape's execution time — nonzero, and untouched on the memoized
// canonical copy so a later batch re-stamps its own time instead of
// inheriting a stale one. (Before per-shape stamping existed, batch
// results always reported Elapsed == 0.)
func TestQueryBatchElapsedStamped(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	sqls := []string{
		"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600",
		// Same shape repeated: shares one execution, still reports its time.
		"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600",
		// Exact path: never memoized, still stamped.
		"SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 5 AND 10",
	}
	for round := 0; round < 2; round++ {
		got := eng.QueryBatch(sqls)
		for i, br := range got {
			if br.Err != nil {
				t.Fatalf("round %d batch[%d]: %v", round, i, br.Err)
			}
			if br.Result.Elapsed <= 0 {
				t.Errorf("round %d batch[%d] %q: Elapsed = %v, want > 0",
					round, i, sqls[i], br.Result.Elapsed)
			}
		}
		if got[0].Result.Elapsed != got[1].Result.Elapsed {
			t.Errorf("round %d: duplicate shapes report different Elapsed (%v vs %v), want the shared shape's time",
				round, got[0].Result.Elapsed, got[1].Result.Elapsed)
		}
	}
}

// TestQueryBatchErrorIsolation: bad queries fail alone; their neighbors
// still answer.
func TestQueryBatchErrorIsolation(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	sqls := []string{
		"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600",
		"THIS IS NOT SQL",
		"SELECT AVG(ss_sales_price) FROM nosuch_table WHERE ss_sold_date_sk BETWEEN 100 AND 600",
		"SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 600",
	}
	got := eng.QueryBatch(sqls)
	if got[0].Err != nil || got[0].Result == nil {
		t.Fatalf("batch[0] = %+v, want success", got[0])
	}
	if got[1].Err == nil {
		t.Fatal("batch[1]: want parse error")
	}
	if got[2].Err == nil || !strings.Contains(got[2].Err.Error(), "nosuch_table") {
		t.Fatalf("batch[2] err = %v, want unregistered-table error", got[2].Err)
	}
	if got[3].Err != nil || got[3].Result == nil {
		t.Fatalf("batch[3] = %+v, want success", got[3])
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	eng := dbest.New(nil)
	if got := eng.QueryBatch(nil); len(got) != 0 {
		t.Fatalf("QueryBatch(nil) = %v, want empty", got)
	}
}

// TestPreparedRunBatch: RunBatch over parameter spans must agree with the
// equivalent standalone queries, on both the model and the exact path.
func TestPreparedRunBatch(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	cases := []struct {
		shape string
		spans []dbest.Span
	}{
		{"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN %g AND %g",
			[]dbest.Span{{Lb: 100, Ub: 300}, {Lb: 200, Ub: 700}, {Lb: 50, Ub: 1000}}},
		// Unmodeled aggregate: exact path, same span machinery.
		{"SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN %g AND %g",
			[]dbest.Span{{Lb: 2, Ub: 10}, {Lb: 5, Ub: 50}, {Lb: 1, Ub: 80}}},
	}
	for _, tc := range cases {
		shape, spans := tc.shape, tc.spans
		p, err := eng.Prepare(fmt.Sprintf(shape, 2.0, 5.0))
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.RunBatch(spans)
		if err != nil {
			t.Fatal(err)
		}
		for i, span := range spans {
			if got[i].Err != nil {
				t.Fatalf("span %v: %v", span, got[i].Err)
			}
			want, err := eng.Query(fmt.Sprintf(shape, span.Lb, span.Ub))
			if err != nil {
				t.Fatal(err)
			}
			g, w := got[i].Result.Aggregates[0].Value, want.Aggregates[0].Value
			if math.Abs(g-w) > 1e-9 {
				t.Fatalf("shape %q span %v: RunBatch = %v, Query = %v", shape, span, g, w)
			}
		}
	}
}

func TestRunBatchNeedsOneRangePredicate(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	p, err := eng.Prepare("SELECT COUNT(ss_sales_price) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunBatch([]dbest.Span{{Lb: 0, Ub: 1}}); err == nil {
		t.Fatal("want error for predicate-free query")
	}
}
