package dbest_test

import (
	"math"
	"sync"
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/table"
)

func TestTrainJoinSampled(t *testing.T) {
	sales := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 80000, Stores: 40, Seed: 21})
	stores := datagen.Store(40, 21)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(sales); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTable(stores); err != nil {
		t.Fatal(err)
	}
	// Keep half the join-key universe on both sides.
	info, err := eng.TrainJoinSampled("store_sales", "store", "ss_store_sk", "s_store_sk",
		1, 2, []string{"s_number_of_employees"}, "ss_net_profit",
		&dbest.TrainOptions{SampleSize: 8000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumModels != 1 {
		t.Fatalf("models = %d", info.NumModels)
	}
	res, err := eng.Query(`SELECT COUNT(ss_net_profit), AVG(ss_net_profit)
		FROM store_sales JOIN store ON ss_store_sk = s_store_sk
		WHERE s_number_of_employees BETWEEN 200 AND 300`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	joined, err := table.EquiJoin(sales, stores, "ss_store_sk", "s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	wantCnt, err := exact.Query(joined, exact.Request{AF: exact.Count, Y: "ss_net_profit",
		Predicates: []exact.Range{{Column: "s_number_of_employees", Lb: 200, Ub: 300}}})
	if err != nil {
		t.Fatal(err)
	}
	// Hashed sampling keeps ~half the key universe, but store volumes are
	// skewed, so the kept half may carry an uneven share of fact rows; the
	// scale correction recovers the magnitude with that variance.
	if re := relErr(res.Aggregates[0].Value, wantCnt.Value); re > 0.5 {
		t.Fatalf("sampled-join COUNT: got %v, want %v (rel err %v)",
			res.Aggregates[0].Value, wantCnt.Value, re)
	}
	wantAvg, err := exact.Query(joined, exact.Request{AF: exact.Avg, Y: "ss_net_profit",
		Predicates: []exact.Range{{Column: "s_number_of_employees", Lb: 200, Ub: 300}}})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[1].Value, wantAvg.Value); re > 0.35 {
		t.Fatalf("sampled-join AVG: got %v, want %v (rel err %v)",
			res.Aggregates[1].Value, wantAvg.Value, re)
	}
}

func TestTrainJoinSampledErrors(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.TrainJoinSampled("a", "b", "k", "k", 1, 2, []string{"x"}, "y", nil); err == nil {
		t.Fatal("want error for unregistered tables")
	}
}

func TestRegressorChoices(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Seed: 22})
	want, err := exact.Query(tb, exact.Request{AF: exact.Avg, Y: "ss_wholesale_cost",
		Predicates: []exact.Range{{Column: "ss_list_price", Lb: 40, Ub: 80}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []string{"ensemble", "gboost", "xgboost", "plr"} {
		eng := dbest.New(nil)
		if err := eng.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Train("store_sales", []string{"ss_list_price"}, "ss_wholesale_cost",
			&dbest.TrainOptions{SampleSize: 5000, Seed: 22, Regressor: reg}); err != nil {
			t.Fatalf("%s: %v", reg, err)
		}
		res, err := eng.Query(`SELECT AVG(ss_wholesale_cost) FROM store_sales
			WHERE ss_list_price BETWEEN 40 AND 80`)
		if err != nil {
			t.Fatalf("%s: %v", reg, err)
		}
		if re := relErr(res.Aggregates[0].Value, want.Value); re > 0.1 {
			t.Errorf("%s: AVG rel err %v", reg, re)
		}
	}
	// Unknown family must fail cleanly.
	eng := dbest.New(nil)
	_ = eng.RegisterTable(tb)
	if _, err := eng.Train("store_sales", []string{"ss_list_price"}, "ss_wholesale_cost",
		&dbest.TrainOptions{Regressor: "forest"}); err == nil {
		t.Fatal("want error for unknown regressor")
	}
}

func TestConcurrentQueries(t *testing.T) {
	eng, _ := newSalesEngine(t, 30000)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	vals := make([]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
					WHERE ss_sold_date_sk BETWEEN 200 AND 900`)
				if err != nil {
					errs[g] = err
					return
				}
				vals[g] = res.Aggregates[0].Value
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if math.Abs(vals[g]-vals[0]) > 1e-12 {
			t.Fatal("concurrent queries must be deterministic on immutable models")
		}
	}
}

func TestVarianceYQueryThroughEngine(t *testing.T) {
	eng, tb := newSalesEngine(t, 40000)
	res, err := eng.Query(`SELECT VARIANCE(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 1700`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	want, err := exact.Query(tb, exact.Request{AF: exact.Variance, Y: "ss_sales_price",
		Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: 100, Ub: 1700}}})
	if err != nil {
		t.Fatal(err)
	}
	// Regression-based VARIANCE misses residual spread; check magnitude only.
	if res.Aggregates[0].Value < 0 || res.Aggregates[0].Value > 4*want.Value {
		t.Fatalf("VARIANCE_y = %v vs exact %v", res.Aggregates[0].Value, want.Value)
	}
}

func TestEmptyRegionQueryErrors(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	if _, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 90000 AND 99000`); err == nil {
		t.Fatal("AVG over an empty region should surface an error")
	}
}
