package dbest

import (
	"sync"
	"sync/atomic"

	"dbest/internal/exec"
	"dbest/internal/workload"
)

// The error-budget router. A query carrying a WITHIN <p>% clause (or a
// tolerance field on the HTTP API) is served from the models only when
// every aggregate's predicted relative error — calibrated by what the
// router has observed for those models so far — fits the budget; otherwise
// it falls through to the exact scan. Each fallback is also a free ground
// truth: the exact answer is compared against the model's, and the
// observed-vs-predicted ratio feeds a per-model-key ring buffer whose
// clamped mean scales future routing decisions. Answers keep their raw
// (uncalibrated) CI and PredRelErr; calibration only moves the routing
// threshold.

const (
	// routerRingCap bounds the per-model-key observation history; old
	// observations age out so a retrained model's improved accuracy is
	// re-learned within a window, not averaged against its past forever.
	routerRingCap = 32
	// calibFactorMin/Max clamp the calibration factor: observations can at
	// most quarter or quadruple the trust in a model's own error estimate,
	// so a few pathological ground truths cannot pin the router open or
	// shut.
	calibFactorMin = 0.25
	calibFactorMax = 4.0
)

// calibRing is a fixed-capacity ring of observed/predicted relative-error
// ratios for one model key. Callers hold the router mutex.
type calibRing struct {
	ratios [routerRingCap]float64
	n      int // filled slots (saturates at routerRingCap)
	next   int // write cursor
}

func (r *calibRing) add(v float64) {
	r.ratios[r.next] = v
	r.next = (r.next + 1) % routerRingCap
	if r.n < routerRingCap {
		r.n++
	}
}

// factor is the clamped mean ratio, or 1 with no observations yet.
func (r *calibRing) factor() float64 {
	if r.n == 0 {
		return 1
	}
	s := 0.0
	for _, v := range r.ratios[:r.n] {
		s += v
	}
	f := s / float64(r.n)
	if f < calibFactorMin {
		return calibFactorMin
	}
	if f > calibFactorMax {
		return calibFactorMax
	}
	return f
}

// routerState is the engine's routing counters plus the per-model-key
// calibration rings. Counters are atomic (read lock-free by /stats); the
// rings are tiny and touched only on tolerance-routed queries, so a plain
// mutex suffices.
type routerState struct {
	modelHits      atomic.Uint64
	exactFallbacks atomic.Uint64
	observations   atomic.Uint64

	mu    sync.Mutex
	rings map[string]*calibRing
}

// factor returns the calibration factor for one model key (1 when the
// router has no history for it).
func (rt *routerState) factor(key string) float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if r, ok := rt.rings[key]; ok {
		return r.factor()
	}
	return 1
}

// observe records one observed/predicted relative-error ratio for key.
func (rt *routerState) observe(key string, ratio float64) {
	rt.observations.Add(1)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.rings == nil {
		rt.rings = make(map[string]*calibRing)
	}
	r := rt.rings[key]
	if r == nil {
		r = &calibRing{}
		rt.rings[key] = r
	}
	r.add(ratio)
}

// RouterStats is a snapshot of the error-budget router's counters.
type RouterStats struct {
	// ModelHits counts tolerance-carrying queries served from the models
	// (predicted error fit the budget).
	ModelHits uint64 `json:"router_model_hits"`
	// ExactFallbacks counts tolerance-carrying queries that fell through to
	// the exact scan (predicted error exceeded the budget, was unknown, or
	// the model evaluation failed).
	ExactFallbacks uint64 `json:"router_exact_fallbacks"`
	// Observations counts observed-vs-predicted ground truths fed into the
	// calibration rings (one per scalar aggregate per fallback).
	Observations uint64 `json:"router_observations"`
	// TrackedModels counts model keys with at least one calibration
	// observation.
	TrackedModels int `json:"router_tracked_models"`
}

// RouterStats returns the engine's error-budget router counters.
func (e *Engine) RouterStats() RouterStats {
	e.router.mu.Lock()
	tracked := len(e.router.rings)
	e.router.mu.Unlock()
	return RouterStats{
		ModelHits:      e.router.modelHits.Load(),
		ExactFallbacks: e.router.exactFallbacks.Load(),
		Observations:   e.router.observations.Load(),
		TrackedModels:  tracked,
	}
}

// runTolerance answers a WITHIN-budget query: run the model plan, serve it
// if every aggregate's calibrated prediction fits the budget, else fall
// through to the eagerly-planned exact fallback — feeding the model-vs-exact
// comparison back into the calibration ring on the way.
func (p *PreparedQuery) runTolerance(snap *engineSnap) (*Result, error) {
	env := &exec.Env{Workers: p.eng.workers, Tables: snap, Shards: &p.eng.shardCtrs}
	mres, merr := p.plan.Run(env)
	if merr == nil && p.withinBudget(mres) {
		p.eng.router.modelHits.Add(1)
		return &Result{Aggregates: mres.Aggregates, Source: mres.Source}, nil
	}
	p.eng.router.exactFallbacks.Add(1)
	eres, err := p.exactPlan.Run(env)
	if err != nil {
		return nil, err
	}
	if merr == nil {
		p.feedback(mres, eres)
	}
	return &Result{Aggregates: eres.Aggregates, Source: eres.Source}, nil
}

// withinBudget reports whether every aggregate's predicted relative error,
// scaled by the model key's calibration factor, fits the query's tolerance.
// An aggregate with unknown bounds (PredRelErr == 0 — old catalogs, tiny
// samples, raw-tuple groups) never fits: serving it would promise a budget
// nothing backs.
func (p *PreparedQuery) withinBudget(res *exec.Result) bool {
	factor := p.eng.router.factor(p.routerKey)
	for _, a := range res.Aggregates {
		if a.PredRelErr <= 0 || a.PredRelErr*factor > p.tolerance {
			return false
		}
	}
	return len(res.Aggregates) > 0
}

// feedback records observed/predicted relative-error ratios from one
// model-vs-exact pair. Only scalar aggregates feed the ring: GROUP BY
// results would need per-group matching for a ground truth, and the scalar
// signal is plentiful enough to calibrate on.
func (p *PreparedQuery) feedback(mres, eres *exec.Result) {
	if len(mres.Aggregates) != len(eres.Aggregates) {
		return
	}
	for i, m := range mres.Aggregates {
		if m.PredRelErr <= 0 || len(m.Groups) > 0 {
			continue
		}
		obs := workload.RelErr(m.Value, eres.Aggregates[i].Value)
		p.eng.router.observe(p.routerKey, obs/m.PredRelErr)
	}
}
