package dbest_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"dbest"
	"dbest/internal/datagen"
)

func TestModelSpecValidate(t *testing.T) {
	valid := func() *dbest.ModelSpec {
		return &dbest.ModelSpec{Table: "t", XCols: []string{"x"}, YCol: "y"}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("minimal spec: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*dbest.ModelSpec)
		wantErr string
	}{
		{"no table", func(s *dbest.ModelSpec) { s.Table = "" }, "requires a table"},
		{"no xcols", func(s *dbest.ModelSpec) { s.XCols = nil }, "at least one x column"},
		{"empty xcol", func(s *dbest.ModelSpec) { s.XCols = []string{""} }, "empty x column"},
		{"dup xcol", func(s *dbest.ModelSpec) { s.XCols = []string{"x", "x"} }, "repeats x column"},
		{"no ycol", func(s *dbest.ModelSpec) { s.YCol = "" }, "requires a y column"},
		{"negative shards", func(s *dbest.ModelSpec) { s.Shards = -1 }, "negative"},
		{"sharded multivariate", func(s *dbest.ModelSpec) { s.Shards = 4; s.XCols = []string{"a", "b"} },
			"exactly one x column"},
		{"sharded groupby", func(s *dbest.ModelSpec) { s.Shards = 4; s.GroupBy = "g" },
			"does not support GROUP BY"},
		{"sharded nominal", func(s *dbest.ModelSpec) { s.Shards = 4; s.NominalBy = "c" },
			"does not support NOMINAL BY"},
		{"sharded join", func(s *dbest.ModelSpec) {
			s.Shards = 4
			s.Join = &dbest.JoinSpec{Table: "u", LeftKey: "k", RightKey: "k"}
		}, "does not support joins"},
		{"nominal multivariate", func(s *dbest.ModelSpec) { s.NominalBy = "c"; s.XCols = []string{"a", "b"} },
			"exactly one x column"},
		{"nominal groupby", func(s *dbest.ModelSpec) { s.NominalBy = "c"; s.GroupBy = "g" },
			"does not support GROUP BY"},
		{"join missing keys", func(s *dbest.ModelSpec) { s.Join = &dbest.JoinSpec{Table: "u"} },
			"left_key and right_key"},
		{"join zero ratio", func(s *dbest.ModelSpec) {
			s.Join = &dbest.JoinSpec{Table: "u", LeftKey: "k", RightKey: "k", Sampled: true}
		}, "nonzero numerator and denominator"},
		{"join half ratio", func(s *dbest.ModelSpec) {
			s.Join = &dbest.JoinSpec{Table: "u", LeftKey: "k", RightKey: "k", SampleNum: 1}
		}, "nonzero numerator and denominator"},
		{"join ratio > 1", func(s *dbest.ModelSpec) {
			s.Join = &dbest.JoinSpec{Table: "u", LeftKey: "k", RightKey: "k", SampleNum: 5, SampleDenom: 4}
		}, "exceeds 1"},
		{"negative sample", func(s *dbest.ModelSpec) { s.SampleSize = -1 }, "negative"},
		{"negative scale", func(s *dbest.ModelSpec) { s.Scale = -2 }, "negative"},
		{"bad regressor", func(s *dbest.ModelSpec) { s.Regressor = "forest" }, "unknown regressor"},
	}
	for _, c := range cases {
		s := valid()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
	// CreateModel must reject nil and invalid specs up front.
	eng := dbest.New(nil)
	if _, err := eng.CreateModel(context.Background(), nil); err == nil {
		t.Fatal("nil spec: want error")
	}
	if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{}); err == nil {
		t.Fatal("empty spec: want error")
	}
}

// CreateModel must produce the same catalog keys as the legacy wrappers it
// subsumes — the wrappers are pure sugar.
func TestCreateModelMatchesLegacyKeys(t *testing.T) {
	build := func() (*dbest.Engine, *dbest.Table) {
		tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 4000, Seed: 1})
		eng := dbest.New(nil)
		if err := eng.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
		return eng, tb
	}
	opts := &dbest.TrainOptions{SampleSize: 1000, Seed: 1}

	legacy, _ := build()
	if _, err := legacy.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", opts); err != nil {
		t.Fatal(err)
	}
	viaSpec, _ := build()
	info, err := viaSpec.CreateModel(context.Background(), &dbest.ModelSpec{
		Name:  "revenue",
		Table: "store_sales", XCols: []string{"ss_sold_date_sk"}, YCol: "ss_sales_price",
		SampleSize: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lk, sk := legacy.ModelKeys(), viaSpec.ModelKeys()
	if len(lk) != 1 || len(sk) != 1 || lk[0] != sk[0] {
		t.Fatalf("keys diverge: legacy %v vs spec %v", lk, sk)
	}
	if info.Key != sk[0] {
		t.Fatalf("TrainInfo.Key = %q, want %q", info.Key, sk[0])
	}
	// Both register staleness tracking.
	if len(legacy.ModelStaleness()) != 1 || len(viaSpec.ModelStaleness()) != 1 {
		t.Fatal("both paths must register staleness tracking")
	}
}

func TestModelsListing(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 6000, Seed: 2})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{
		Name:  "by_date",
		Table: "store_sales", XCols: []string{"ss_sold_date_sk"}, YCol: "ss_sales_price",
		SampleSize: 1000, Seed: 1, Shards: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{
		Table: "store_sales", XCols: []string{"ss_quantity"}, YCol: "ss_sales_price",
		SampleSize: 500, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}

	models := eng.Models()
	if len(models) != 2 {
		t.Fatalf("Models() = %d entries, want 2: %+v", len(models), models)
	}
	for _, m := range models {
		if strings.Contains(m.Key, "@s") {
			t.Fatalf("Models() leaked a raw shard-member key: %q", m.Key)
		}
		if m.Spec == nil {
			t.Fatalf("model %s has no spec", m.Key)
		}
		if m.Bytes <= 0 || m.NumModels <= 0 {
			t.Fatalf("model %s reports empty footprint: %+v", m.Key, m)
		}
		if !m.Tracked {
			t.Fatalf("model %s should be staleness-tracked", m.Key)
		}
	}
	// The sharded ensemble is one logical entry with its shard count.
	var sharded *dbest.ModelInfo
	for i := range models {
		if models[i].Name == "by_date" {
			sharded = &models[i]
		}
	}
	if sharded == nil || sharded.Shards != 4 || sharded.NumModels != 4 {
		t.Fatalf("sharded ensemble listing = %+v, want one entry with 4 shards", sharded)
	}
	// Raw ModelKeys still exposes the member keys (5 sets total).
	if got := len(eng.ModelKeys()); got != 5 {
		t.Fatalf("ModelKeys() = %d keys, want 5 (4 members + 1 plain)", got)
	}
}

func TestDropModel(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 6000, Seed: 3})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	mk := func(name, xcol string, shards int) {
		t.Helper()
		if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{
			Name: name, Table: "store_sales", XCols: []string{xcol}, YCol: "ss_sales_price",
			SampleSize: 500, Seed: 1, Shards: shards,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("dated", "ss_sold_date_sk", 4)
	mk("qty", "ss_quantity", 0)

	// Unknown name errors.
	if _, err := eng.DropModel("ghost"); err == nil {
		t.Fatal("dropping an unknown model should fail")
	}
	if _, err := eng.DropModel(""); err == nil {
		t.Fatal("dropping an empty name should fail")
	}

	// Dropping by name removes the whole ensemble and its ledger entries.
	removed, err := eng.DropModel("dated")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 4 {
		t.Fatalf("DropModel removed %v, want the 4 ensemble members", removed)
	}
	for _, st := range eng.ModelStaleness() {
		if strings.Contains(st.Key, "ss_sold_date_sk") {
			t.Fatalf("ledger still tracks dropped model %s", st.Key)
		}
	}
	if len(eng.Models()) != 1 {
		t.Fatalf("Models() after drop = %+v, want just qty", eng.Models())
	}

	// Dropping by exact catalog key works too.
	key := eng.ModelKeys()[0]
	if removed, err = eng.DropModel(key); err != nil || len(removed) != 1 {
		t.Fatalf("DropModel(%q) = %v, %v", key, removed, err)
	}
	if len(eng.ModelKeys()) != 0 {
		t.Fatalf("catalog not empty: %v", eng.ModelKeys())
	}

	// Queries over the dropped models fall back to the exact path.
	res, err := eng.Query("SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_quantity BETWEEN 0 AND 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source after drop = %q, want exact", res.Source)
	}
}

func TestExecStatements(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 6000, Seed: 4})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Exec("CREATE MODEL sales_by_date ON store_sales(ss_sold_date_sk; ss_sales_price) SHARDS 4 SAMPLE 1000 SEED 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create-model" || res.Train == nil || res.Train.Shards != 4 {
		t.Fatalf("CREATE MODEL result = %+v", res)
	}
	if res.Spec == nil || res.Spec.Name != "sales_by_date" || res.Spec.Shards != 4 || res.Spec.SampleSize != 1000 {
		t.Fatalf("CREATE MODEL spec = %+v", res.Spec)
	}

	// The created ensemble answers model-path queries.
	res, err = eng.Exec("SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk BETWEEN 0 AND 2000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "select" || res.Query == nil || res.Query.Source != "model" {
		t.Fatalf("SELECT result = %+v", res)
	}
	if re := relErr(res.Query.Aggregates[0].Value, 6000); re > 0.1 {
		t.Fatalf("COUNT via CREATE MODEL ensemble: rel err %v", re)
	}

	res, err = eng.Exec("SHOW MODELS")
	if err != nil || res.Kind != "show-models" || len(res.Models) != 1 {
		t.Fatalf("SHOW MODELS = %+v, %v", res, err)
	}
	if res.Models[0].Name != "sales_by_date" {
		t.Fatalf("SHOW MODELS entry = %+v", res.Models[0])
	}

	res, err = eng.Exec("DROP MODEL sales_by_date")
	if err != nil || res.Kind != "drop-model" || len(res.Dropped) != 4 {
		t.Fatalf("DROP MODEL = %+v, %v", res, err)
	}

	if _, err := eng.Exec("CREATE MODEL broken ON store_sales(ss_sold_date_sk; ss_sales_price) SHARDS 2 GROUP BY g"); err == nil {
		t.Fatal("invalid spec through Exec should fail")
	}
	if _, err := eng.Exec("NOT A STATEMENT"); err == nil {
		t.Fatal("garbage statement should fail")
	}
}

// ExecContext must honor cancellation for CREATE MODEL like TrainContext
// did for Train.
func TestExecCreateModelCancellation(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 5})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ExecContext(ctx, "CREATE MODEL m ON store_sales(ss_sold_date_sk; ss_sales_price)"); err == nil {
		t.Fatal("canceled CREATE MODEL should fail")
	}
	if len(eng.ModelKeys()) != 0 {
		t.Fatal("canceled CREATE MODEL must not touch the catalog")
	}
}

// The spec round-trips through SaveModels/LoadModels: the reloaded engine
// knows each model's definition and tracks its staleness.
func TestSpecPersistRoundTrip(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 6000, Seed: 6})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	spec := &dbest.ModelSpec{
		Name:  "persisted",
		Table: "store_sales", XCols: []string{"ss_sold_date_sk"}, YCol: "ss_sales_price",
		SampleSize: 1000, Seed: 7, Shards: 4,
	}
	if _, err := eng.CreateModel(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/models.gob"
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}

	eng2 := dbest.New(nil)
	if err := eng2.RegisterTable(datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 6000, Seed: 6})); err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	models := eng2.Models()
	if len(models) != 1 || models[0].Spec == nil {
		t.Fatalf("reloaded Models() = %+v, want one entry with a spec", models)
	}
	got := models[0].Spec
	if got.Name != "persisted" || got.Shards != 4 || got.SampleSize != 1000 || got.Seed != 7 {
		t.Fatalf("reloaded spec = %+v, want the original definition", got)
	}
	// The reloaded ensemble is staleness-tracked per shard — and FRESH:
	// with the table unchanged since the save, no shard may score stale
	// (a bogus score here would make a refresher rebuild every loaded
	// ensemble at startup).
	sts := eng2.ModelStaleness()
	if len(sts) != 4 {
		t.Fatalf("reloaded staleness entries = %d, want 4 (one per shard)", len(sts))
	}
	for _, st := range sts {
		if st.Shards != 4 {
			t.Fatalf("reloaded shard entry = %+v, want shard routing metadata", st)
		}
		if st.Score != 0 || st.IngestedRows != 0 {
			t.Fatalf("loaded shard scored stale with no ingestion: %+v", st)
		}
	}
	// And DROP MODEL by name works on the reloaded catalog.
	if removed, err := eng2.DropModel("persisted"); err != nil || len(removed) != 4 {
		t.Fatalf("DropModel on reloaded catalog = %v, %v", removed, err)
	}
}

// DropTable now force-stales dependent models (they are unrefreshable
// without base data), and DropTableCascade drops them entirely.
func TestDropTableStalenessAndCascade(t *testing.T) {
	eng, _ := newSalesEngine(t, 8000)
	if s := eng.ModelStaleness()[0]; s.Score != 0 {
		t.Fatalf("fresh model staleness = %g, want 0", s.Score)
	}
	eng.DropTable("store_sales")
	if s := eng.ModelStaleness()[0]; s.Score != 1 {
		t.Fatalf("staleness after DropTable = %g, want 1 (force-staled)", s.Score)
	}
	// Models still answer (DBEst's defining property).
	res, err := eng.Query("SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 900")
	if err != nil || res.Source != "model" {
		t.Fatalf("model query after DropTable = %+v, %v", res, err)
	}

	// Cascade: table and models both go.
	eng2, _ := newSalesEngine(t, 8000)
	removed := eng2.DropTableCascade("store_sales")
	if len(removed) != 1 {
		t.Fatalf("DropTableCascade removed %v, want the one model", removed)
	}
	if len(eng2.ModelKeys()) != 0 || len(eng2.ModelStaleness()) != 0 {
		t.Fatalf("cascade left state behind: keys=%v staleness=%v",
			eng2.ModelKeys(), eng2.ModelStaleness())
	}
	if _, err := eng2.Query("SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 900"); err == nil {
		t.Fatal("nothing should answer after a cascade drop")
	}
}

// The full production lifecycle that closures could never support:
// CreateModel → SaveModels → fresh engine LoadModels → Append past the
// threshold → the background refresher retrains the LOADED model from its
// spec, bumping the generation and folding the new rows into answers.
func TestLoadedCatalogAutoRefresh(t *testing.T) {
	const base = 4000
	eng := dbest.New(nil)
	if err := eng.RegisterTable(streamTable(base, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{
		Name:  "stream_rate",
		Table: "stream", XCols: []string{"x"}, YCol: "y",
		SampleSize: 1000, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/models.gob"
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}

	// Fresh engine: same data registered, models loaded from disk.
	eng2 := dbest.New(nil)
	defer eng2.StopRefresher()
	if err := eng2.RegisterTable(streamTable(base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	if n := len(eng2.ModelStaleness()); n != 1 {
		t.Fatalf("loaded model not staleness-tracked: %d entries", n)
	}

	countSQL := "SELECT COUNT(*) FROM stream WHERE x BETWEEN 0 AND 1000"
	query := func() float64 {
		t.Helper()
		res, err := eng2.Query(countSQL)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != "model" {
			t.Fatalf("source = %q, want model", res.Source)
		}
		return res.Aggregates[0].Value
	}
	if before := query(); relErr(before, base) > 0.15 {
		t.Fatalf("pre-ingest loaded-model COUNT = %g, want ~%d", before, base)
	}
	wipesBefore := eng2.PlanCacheStats().GenerationWipes

	if err := eng2.StartRefresher(&dbest.RefreshOptions{
		Interval:  5 * time.Millisecond,
		Threshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	// Ingest a full table's worth past the threshold.
	if _, err := eng2.Append("stream", streamRows(base, 9)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for eng2.RefreshStats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never retrained the loaded model; staleness: %+v", eng2.ModelStaleness())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The retrained model sees the doubled table, and cached plans were
	// invalidated by the generation bump.
	if after := query(); relErr(after, 2*base) > 0.15 {
		t.Fatalf("post-refresh loaded-model COUNT = %g, want ~%d", after, 2*base)
	}
	if wipes := eng2.PlanCacheStats().GenerationWipes; wipes <= wipesBefore {
		t.Fatalf("GenerationWipes = %d, want > %d: refresh of a loaded model must invalidate plans", wipes, wipesBefore)
	}
	st := eng2.ModelStaleness()[0]
	if st.Refreshes == 0 || st.BaseRows != 2*base || st.LastError != "" {
		t.Fatalf("loaded-model ledger after refresh = %+v", st)
	}
	// The refreshed model still carries its spec (a re-save round-trips).
	if m := eng2.Models(); len(m) != 1 || m[0].Spec == nil || m[0].Name != "stream_rate" {
		t.Fatalf("spec lost across refresh: %+v", m)
	}
}
