package dbest_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dbest"
)

// shardStreamTable builds a uniform (x, y) table over x in [0, 1000).
func shardStreamTable(rows int, seed int64) *dbest.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, rows)
	ys := make([]float64, rows)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = 2*xs[i] + 10*rng.NormFloat64()
	}
	tb := dbest.NewTable("stream")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

// hotRows builds append batches confined to [lo, lo+10): every row lands in
// one shard's range.
func hotRows(n int, lo float64, seed int64) [][]interface{} {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]interface{}, n)
	for i := range rows {
		x := lo + rng.Float64()*10
		rows[i] = []interface{}{x, 2*x + 10*rng.NormFloat64()}
	}
	return rows
}

// TestConcurrentShardedIngestQueryRefresh is the sharded -race stress leg:
// appenders flooding one shard's range, queriers running sharded
// QueryBatch, and the background refresher retraining the dirty shard all
// race. Afterwards the merged answers must agree with a freshly trained
// unsharded model over the same final data, only the flooded shard may
// have retrained, and a refresher kick with no new rows must not retrain
// anything again.
func TestConcurrentShardedIngestQueryRefresh(t *testing.T) {
	eng := dbest.New(nil)
	if err := eng.RegisterTable(shardStreamTable(8000, 1)); err != nil {
		t.Fatal(err)
	}
	opts := &dbest.TrainOptions{SampleSize: 1500, Seed: 1}
	if _, err := eng.TrainSharded("stream", "x", "y", 4, opts); err != nil {
		t.Fatal(err)
	}
	const threshold = 0.05
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  2 * time.Millisecond,
		Threshold: threshold,
		Workers:   2,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()

	part := eng.TablePartitioning("stream")
	if part == nil || part.Shards() != 4 {
		t.Fatalf("partition = %+v", part)
	}
	hotShard := part.Shards() - 1
	hotLo := part.Bounds[hotShard] + 1 // strictly inside the last shard

	sqls := []string{
		"SELECT COUNT(*) FROM stream WHERE x BETWEEN 0 AND 1000",
		"SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900",
		"SELECT SUM(y) FROM stream WHERE x BETWEEN 400 AND 450", // narrow: prunes shards
		"SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900", // duplicate shape
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) { // appender: every row lands in the hot shard
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := eng.Append("stream", hotRows(40, hotLo, seed+int64(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g) * 1000)
		go func() { // querier
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for _, br := range eng.QueryBatch(sqls) {
					if br.Err != nil {
						errCh <- fmt.Errorf("%s: %w", br.SQL, br.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesce: wait until no shard is refreshing and every score is below
	// the threshold (the dirty shard's last retrain absorbed all appends).
	eng.RefreshNow()
	deadline := time.Now().Add(20 * time.Second)
	for {
		settled := true
		for _, st := range eng.ModelStaleness() {
			if st.Refreshing || st.Score >= threshold {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresher never settled: %+v", eng.ModelStaleness())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Only the flooded shard retrained.
	var hotRefreshes uint64
	for _, st := range eng.ModelStaleness() {
		if st.Shards != 4 {
			t.Fatalf("entry missing shard metadata: %+v", st)
		}
		if st.Shard == hotShard {
			hotRefreshes = st.Refreshes
			continue
		}
		if st.Refreshes > 0 {
			t.Fatalf("clean shard %d was retrained %d times: %+v", st.Shard, st.Refreshes, st)
		}
	}
	if hotRefreshes == 0 {
		t.Fatalf("hot shard never retrained: %+v", eng.ModelStaleness())
	}

	// No double-retrain: a kick with no new rows must not refresh anything.
	eng.RefreshNow()
	time.Sleep(100 * time.Millisecond)
	for _, st := range eng.ModelStaleness() {
		if st.Shard == hotShard && st.Refreshes != hotRefreshes {
			t.Fatalf("shard %d retrained without new rows: %d -> %d", st.Shard, hotRefreshes, st.Refreshes)
		}
	}

	// The merged answers agree with a freshly trained unsharded model over
	// the same final table snapshot.
	final := eng.Table("stream")
	ref := dbest.New(nil)
	if err := ref.RegisterTable(final.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Train("stream", []string{"x"}, "y", opts); err != nil {
		t.Fatal(err)
	}
	for _, sql := range sqls[:3] {
		got, err := eng.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(got.Aggregates[0].Value, want.Aggregates[0].Value); re > 0.15 {
			t.Fatalf("%s: sharded %v vs unsharded %v (rel err %.3f)",
				sql, got.Aggregates[0].Value, want.Aggregates[0].Value, re)
		}
	}
}
