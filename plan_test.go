package dbest_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

func TestPrepareAndRun(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	p, err := eng.Prepare(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 200 AND 600`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Path() != dbest.PathModel {
		t.Fatalf("path = %q, want %q", p.Path(), dbest.PathModel)
	}
	if keys := p.ModelKeys(); len(keys) != 1 || !strings.Contains(keys[0], "store_sales") {
		t.Fatalf("model keys = %v", keys)
	}
	res1, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Aggregates[0].Value != res2.Aggregates[0].Value {
		t.Fatalf("repeated Run disagrees: %v vs %v", res1.Aggregates[0].Value, res2.Aggregates[0].Value)
	}
	if res1.Source != "model" {
		t.Fatalf("source = %q, want model", res1.Source)
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	if st := eng.PlanCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("fresh engine stats = %+v", st)
	}
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st := eng.PlanCacheStats(); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first query: %+v, want 1 miss, 1 entry", st)
	}
	// The same shape with different whitespace, keyword case and number
	// formatting must hit: the cache keys on normalized SQL.
	if _, err := eng.Query("select  avg(ss_sales_price)  from store_sales " +
		"where ss_sold_date_sk between 200.0 and 600 ;"); err != nil {
		t.Fatal(err)
	}
	if st := eng.PlanCacheStats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after equivalent query: %+v, want 1 hit, 1 entry", st)
	}
	// Different bounds are a different shape: miss, second entry.
	if _, err := eng.Query("SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 300"); err != nil {
		t.Fatal(err)
	}
	if st := eng.PlanCacheStats(); st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after new shape: %+v, want 2 misses, 2 entries", st)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 5000, Seed: 1})
	eng := dbest.New(&dbest.Options{PlanCacheSize: -1})
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sales_price BETWEEN 0 AND 1000"
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.PlanCacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache stats = %+v, want no hits and no entries", st)
	}
}

func TestPlanCacheInvalidatedByTrain(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	// ss_quantity has no model yet: the plan falls to the exact path and is
	// cached as such.
	sql := "SELECT AVG(ss_quantity) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	res, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("pre-train source = %q, want exact", res.Source)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_quantity",
		&dbest.TrainOptions{SampleSize: 5000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Training bumped the catalog generation: the cached exact plan must be
	// invalidated and the query re-planned onto the new model.
	res, err = eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("post-train source = %q, want model", res.Source)
	}
	st := eng.PlanCacheStats()
	if st.Misses < 2 {
		t.Fatalf("stats = %+v: invalidation should force a second planning miss", st)
	}
	// The generation bump drops every stale entry, not just the looked-up
	// key — cached plans must not pin replaced model sets in memory.
	if st.Entries != 1 {
		t.Fatalf("stats = %+v: stale plans should be wiped on invalidation, leaving 1 entry", st)
	}
}

func TestPlanCacheInvalidatedByLoadModels(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	path := filepath.Join(t.TempDir(), "models.gob")
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}

	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 1})
	fresh := dbest.New(nil)
	if err := fresh.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	res, err := fresh.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("pre-load source = %q, want exact", res.Source)
	}
	if err := fresh.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	res, err = fresh.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("post-load source = %q, want model", res.Source)
	}
}

// TestConcurrentQueryTrain races many readers of the plan cache and catalog
// against a writer retraining model sets. Run with -race this is the
// engine-level counterpart of the dbest-serve load test.
func TestConcurrentQueryTrain(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				lo := (c*25 + i) % 400
				sql := fmt.Sprintf("SELECT AVG(ss_sales_price) FROM store_sales"+
					" WHERE ss_sold_date_sk BETWEEN %d AND %d", lo, lo+300)
				if i%2 == 0 { // fixed shape: exercises the cache-hit path
					sql = "SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 0 AND 700"
				}
				if _, err := eng.Query(sql); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_quantity",
				&dbest.TrainOptions{SampleSize: 1000, Seed: int64(i)}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTrainJoinSampledRejectsBadRatio(t *testing.T) {
	eng := dbest.New(nil)
	cases := []struct{ num, denom uint64 }{{0, 4}, {1, 0}, {0, 0}, {5, 4}}
	for _, c := range cases {
		_, err := eng.TrainJoinSampled("a", "b", "k", "k", c.num, c.denom, []string{"x"}, "y", nil)
		if err == nil {
			t.Fatalf("ratio %d/%d: want error, got nil", c.num, c.denom)
		}
		if !strings.Contains(err.Error(), "ratio") {
			t.Fatalf("ratio %d/%d: error %q should reject the keep ratio", c.num, c.denom, err)
		}
	}
	// A valid ratio proceeds to the next check (unregistered tables).
	_, err := eng.TrainJoinSampled("a", "b", "k", "k", 1, 4, []string{"x"}, "y", nil)
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("valid ratio: err = %v, want unregistered-table error", err)
	}
}

func TestCountStarAllStringColumns(t *testing.T) {
	eng := dbest.New(nil)
	tb := dbest.NewTable("labels")
	tb.AddStringColumn("a", []string{"x", "y", "z"})
	tb.AddStringColumn("b", []string{"p", "q", "r"})
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query("SELECT COUNT(*) FROM labels")
	if err == nil {
		t.Fatal("COUNT(*) over all-string table: want error, got nil")
	}
	if !strings.Contains(err.Error(), "numeric column") {
		t.Fatalf("error %q should explain the missing numeric column", err)
	}
}

// TestStdlibOnly is the regression test for the headline bugfix: the module
// must declare no external dependencies, so `go build ./...` works from a
// fresh clone with nothing but the Go toolchain.
func TestStdlibOnly(t *testing.T) {
	data, err := os.ReadFile("go.mod")
	if err != nil {
		t.Fatalf("go.mod must exist at the module root: %v", err)
	}
	mod := string(data)
	if !strings.Contains(mod, "module dbest") {
		t.Fatalf("go.mod must declare module dbest:\n%s", mod)
	}
	if strings.Contains(mod, "require") {
		t.Fatalf("go.mod must not require external modules:\n%s", mod)
	}
}

// BenchmarkPrepare shows what the plan cache saves on a repeated query
// shape: a cache hit skips the parser and the catalog scan entirely.
func BenchmarkPrepareCached(b *testing.B) {
	eng := benchSalesEngine(b)
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	if _, err := eng.Prepare(sql); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Prepare(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrepareUncached(b *testing.B) {
	eng := benchSalesEngine(b, dbest.Options{PlanCacheSize: -1})
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Prepare(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryCached(b *testing.B) {
	eng := benchSalesEngine(b)
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryUncached(b *testing.B) {
	eng := benchSalesEngine(b, dbest.Options{PlanCacheSize: -1})
	sql := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 600"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSalesEngine(b *testing.B, opts ...dbest.Options) *dbest.Engine {
	b.Helper()
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 1})
	var o *dbest.Options
	if len(opts) > 0 {
		o = &opts[0]
	}
	eng := dbest.New(o)
	if err := eng.RegisterTable(tb); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 5000, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	return eng
}

// TestPlanCacheEvictionCounters: capacity resets and generation wipes are
// counted, and hit/miss counters survive both kinds of wholesale drop.
func TestPlanCacheEvictionCounters(t *testing.T) {
	eng := dbest.New(&dbest.Options{PlanCacheSize: 2})
	s1 := "SELECT COUNT(a) FROM t WHERE a BETWEEN 1 AND 2"
	s2 := "SELECT COUNT(a) FROM t WHERE a BETWEEN 3 AND 4"
	s3 := "SELECT COUNT(a) FROM t WHERE a BETWEEN 5 AND 6"
	for _, sql := range []string{s1, s1, s2} {
		if _, err := eng.Prepare(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Third distinct shape overflows max=2: wholesale capacity reset.
	if _, err := eng.Prepare(s3); err != nil {
		t.Fatal(err)
	}
	st = eng.PlanCacheStats()
	if st.Resets != 1 || st.Evictions != 2 || st.Entries != 1 {
		t.Fatalf("after capacity reset: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("hit/miss counters must survive a reset: %+v", st)
	}

	// A catalog mutation bumps the generation: the next lookup wipes the
	// map, counts the wipe and the evictions, and keeps hits/misses.
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(2 * i)
	}
	tb := dbest.NewTable("t")
	tb.AddFloatColumn("a", xs)
	tb.AddFloatColumn("b", ys)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("t", []string{"a"}, "b", &dbest.TrainOptions{SampleSize: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Prepare(s3); err != nil {
		t.Fatal(err)
	}
	st = eng.PlanCacheStats()
	if st.GenerationWipes != 1 || st.Evictions != 3 {
		t.Fatalf("after generation wipe: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("hit/miss counters must survive a wipe: %+v", st)
	}
}
