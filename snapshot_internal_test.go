package dbest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// snapTestTable builds a deterministic (x, y) table with y = 2x exactly and
// x uniform over [0, 1000). The exact linear relation makes torn catalog
// views detectable: for any range [a, b], SUM(y)/COUNT(*) must come out
// near a+b (the mean of y over the range) no matter which model generation
// answered — but only if both aggregates bound the SAME generation. Models
// are retrained with alternating Scale (1 vs 3), which multiplies both
// aggregates by the same factor; a query whose COUNT bound one generation
// and whose SUM bound the other is off by 3x in the ratio.
func snapTestTable(name string, rows int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, rows)
	ys := make([]float64, rows)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = 2 * xs[i]
	}
	tb := NewTable(name)
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

// checkRatio asserts one result's SUM/COUNT ratio is consistent with a
// single-generation catalog view of the y = 2x table.
func checkRatio(res *Result, lo, hi float64) error {
	if len(res.Aggregates) != 2 {
		return fmt.Errorf("got %d aggregates, want 2", len(res.Aggregates))
	}
	count, sum := res.Aggregates[0].Value, res.Aggregates[1].Value
	if count <= 0 {
		return fmt.Errorf("COUNT = %g, want > 0", count)
	}
	want := lo + hi // mean of y = 2x over [lo, hi]
	ratio := sum / count
	if math.Abs(ratio-want) > 0.5*want {
		return fmt.Errorf("SUM/COUNT = %.1f, want ~%.1f: aggregates bound different catalog generations", ratio, want)
	}
	return nil
}

// TestPrepareTrainInterleaveConsistency is the regression test for the
// prepare-time generation race: planning used to read the catalog once per
// aggregate lookup, so a Train committing between the COUNT lookup and the
// SUM lookup of one query could bind the two aggregates to different model
// generations. Planning now resolves every lookup against one immutable
// snapshot captured at the top of the call, so a query's answer is always a
// single-generation view no matter how trains interleave.
func TestPrepareTrainInterleaveConsistency(t *testing.T) {
	eng := New(nil)
	if err := eng.RegisterTable(snapTestTable("inter", 4000, 1)); err != nil {
		t.Fatal(err)
	}
	train := func(scale float64) error {
		_, err := eng.Train("inter", []string{"x"}, "y",
			&TrainOptions{SampleSize: 800, Seed: 1, Scale: scale})
		return err
	}
	if err := train(1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	trainErr := make(chan error, 1)
	var trains atomic.Int64
	go func() {
		defer close(trainErr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			scale := 1.0
			if i%2 == 1 {
				scale = 3.0
			}
			if err := train(scale); err != nil {
				trainErr <- err
				return
			}
			trains.Add(1)
		}
	}()

	const sql = "SELECT COUNT(*), SUM(y) FROM inter WHERE x BETWEEN 200 AND 800"
	deadline := time.Now().Add(10 * time.Second)
	queries := 0
	for (trains.Load() < 10 || queries < 50) && time.Now().Before(deadline) {
		res, err := eng.Query(sql)
		if err != nil {
			t.Fatalf("query %d: %v", queries, err)
		}
		if err := checkRatio(res, 200, 800); err != nil {
			t.Fatalf("query %d: %v", queries, err)
		}
		queries++
	}
	close(stop)
	if err := <-trainErr; err != nil {
		t.Fatalf("trainer: %v", err)
	}
	if trains.Load() < 2 {
		t.Fatalf("only %d retrains interleaved; test needs concurrent trains to exercise the race", trains.Load())
	}
}

// TestConcurrentSnapshotStress races every snapshot publisher and consumer
// at once — appenders, a retrainer alternating model scale, Query and
// QueryBatch readers, and the background staleness refresher — and asserts
// every individual answer reflects a single catalog generation (the y = 2x
// ratio invariant). Run under -race this doubles as the memory-model check
// on the atomic snapshot plumbing.
func TestConcurrentSnapshotStress(t *testing.T) {
	eng := New(nil)
	if err := eng.RegisterTable(snapTestTable("stress", 4000, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("stress", []string{"x"}, "y",
		&TrainOptions{SampleSize: 800, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartRefresher(&RefreshOptions{
		Interval:  2 * time.Millisecond,
		Threshold: 0.05,
		Workers:   2,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()

	stop := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup

	// Appenders: keep publishing new table snapshots (y = 2x preserved).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				rows := make([][]interface{}, 40)
				for j := range rows {
					x := rng.Float64() * 1000
					rows[j] = []interface{}{x, 2 * x}
				}
				if _, err := eng.Append("stress", rows); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g) + 10)
	}
	// Retrainer: alternates Scale so torn generation views are detectable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			scale := 1.0
			if i%2 == 1 {
				scale = 3.0
			}
			if _, err := eng.Train("stress", []string{"x"}, "y",
				&TrainOptions{SampleSize: 800, Seed: 1, Scale: scale}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Readers: single queries and batches, each answer checked for
	// single-generation consistency.
	sqls := []string{
		"SELECT COUNT(*), SUM(y) FROM stress WHERE x BETWEEN 100 AND 900",
		"SELECT COUNT(*), SUM(y) FROM stress WHERE x BETWEEN 200 AND 800",
		"SELECT COUNT(*), SUM(y) FROM stress WHERE x BETWEEN 100 AND 900", // duplicate shape
	}
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func() { // Query reader
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(sqls[0])
				if err != nil {
					errCh <- err
					return
				}
				if err := checkRatio(res, 100, 900); err != nil {
					errCh <- err
					return
				}
			}
		}()
		go func() { // QueryBatch reader
			defer wg.Done()
			bounds := [][2]float64{{100, 900}, {200, 800}, {100, 900}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, br := range eng.QueryBatch(sqls) {
					if br.Err != nil {
						errCh <- br.Err
						return
					}
					if err := checkRatio(br.Result, bounds[i][0], bounds[i][1]); err != nil {
						errCh <- fmt.Errorf("batch[%d]: %w", i, err)
					}
				}
			}
		}()
	}

	// Let writers finish, then stop the readers.
	writerDone := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(writerDone)
	}()
	<-writerDone
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSnapshotsAreGCable asserts that superseded engine snapshots really
// are released: once new publications replace a snapshot and no query
// holds it, nothing in the engine pins it and the collector reclaims it.
// A leak here would make the epoch scheme accumulate one table+catalog
// view per mutation forever.
func TestSnapshotsAreGCable(t *testing.T) {
	eng := New(nil)
	if err := eng.RegisterTable(snapTestTable("gc", 500, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("gc", []string{"x"}, "y",
		&TrainOptions{SampleSize: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Touch the read path so the plan cache memoizes against the current
	// snapshot — cached state must pin models, never whole snapshots.
	if _, err := eng.Query("SELECT COUNT(*), SUM(y) FROM gc WHERE x BETWEEN 100 AND 900"); err != nil {
		t.Fatal(err)
	}

	var finalized atomic.Bool
	old := eng.snap.Load()
	runtime.SetFinalizer(old, func(*engineSnap) { finalized.Store(true) })
	old = nil
	_ = old

	// Publish replacements so the finalizer target is superseded.
	for i := 0; i < 3; i++ {
		x := float64(i)
		if _, err := eng.Append("gc", [][]interface{}{{x, 2 * x}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200 && !finalized.Load(); i++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if !finalized.Load() {
		t.Fatal("superseded engine snapshot was never garbage-collected: something retains old snapshots")
	}
}
