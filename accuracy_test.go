package dbest_test

import (
	"fmt"
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
)

// Accuracy-regression harness: trains on deterministic datagen tables and
// asserts that model COUNT/SUM/AVG answers stay within fixed per-aggregate
// relative-error bounds against the exact path — for an unsharded model
// and for sharded ensembles at K = 1, 4 and 16. The bounds are shared by
// every configuration, so sharding is held to error no looser than
// unsharded; a regression in training, evaluation, or the shard merge
// fails CI here before it ships. Gated behind -short because it trains
// 4 model configurations (~10 s).

// accuracyBounds are the fixed per-aggregate relative-error ceilings,
// shared by every configuration. Measured worst cases on the seed data
// (deterministic, see the t.Logf output under -v): COUNT ≤ 0.048,
// SUM ≤ 0.051, AVG ≤ 0.060 — the AVG worst case is the unsharded model on
// the narrowest window; K=16 sharding cuts it to 0.003.
var accuracyBounds = map[exact.AggFunc]float64{
	exact.Count: 0.08,
	exact.Sum:   0.08,
	exact.Avg:   0.07,
}

// accuracyRanges is the query workload: windows of varying width across
// the ss_sold_date_sk domain (0..1823), from ~2% to the full domain.
var accuracyRanges = [][2]float64{
	{100, 140},
	{400, 520},
	{850, 1000},
	{200, 900},
	{1200, 1800},
	{0, 1823},
}

func TestAccuracyRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy harness trains 4 model configurations; skipped in -short")
	}
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Seed: 42})

	type config struct {
		name   string
		shards int // 0 = plain (unsharded) Train
	}
	configs := []config{
		{"unsharded", 0},
		{"sharded-k1", 1},
		{"sharded-k4", 4},
		{"sharded-k16", 16},
	}
	aggs := []struct {
		af  exact.AggFunc
		sql string
	}{
		{exact.Count, "COUNT(*)"},
		{exact.Sum, "SUM(ss_sales_price)"},
		{exact.Avg, "AVG(ss_sales_price)"},
	}

	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			eng := dbest.New(nil)
			if err := eng.RegisterTable(tb); err != nil {
				t.Fatal(err)
			}
			opts := &dbest.TrainOptions{SampleSize: 4000, Seed: 42}
			var err error
			if cfg.shards == 0 {
				_, err = eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", opts)
			} else {
				_, err = eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", cfg.shards, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, agg := range aggs {
				worst := 0.0
				for _, r := range accuracyRanges {
					sql := fmt.Sprintf("SELECT %s FROM store_sales WHERE ss_sold_date_sk BETWEEN %g AND %g",
						agg.sql, r[0], r[1])
					res, err := eng.Query(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if res.Source != "model" {
						t.Fatalf("%s answered by %q, want model", sql, res.Source)
					}
					want := exactAnswer(t, tb, agg.af, "ss_sales_price", "ss_sold_date_sk", r[0], r[1])
					re := relErr(res.Aggregates[0].Value, want)
					if re > worst {
						worst = re
					}
					if re > accuracyBounds[agg.af] {
						t.Errorf("%s over [%g,%g]: rel err %.4f exceeds bound %.2f (got %v, want %v)",
							agg.sql, r[0], r[1], re, accuracyBounds[agg.af],
							res.Aggregates[0].Value, want)
					}
				}
				t.Logf("%s %s: worst rel err %.4f (bound %.2f)", cfg.name, agg.sql, worst, accuracyBounds[agg.af])
			}
		})
	}
}
