package dbest_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
)

// Accuracy-regression harness: trains on deterministic datagen tables and
// asserts that model COUNT/SUM/AVG answers stay within fixed per-aggregate
// relative-error bounds against the exact path — for an unsharded model
// and for sharded ensembles at K = 1, 4 and 16. The bounds are shared by
// every configuration, so sharding is held to error no looser than
// unsharded; a regression in training, evaluation, or the shard merge
// fails CI here before it ships. Gated behind -short because it trains
// 4 model configurations (~10 s).

// accuracyBounds are the fixed per-aggregate relative-error ceilings,
// shared by every configuration. Measured worst cases on the seed data
// (deterministic, see the t.Logf output under -v): COUNT ≤ 0.048,
// SUM ≤ 0.051, AVG ≤ 0.060 — the AVG worst case is the unsharded model on
// the narrowest window; K=16 sharding cuts it to 0.003.
var accuracyBounds = map[exact.AggFunc]float64{
	exact.Count: 0.08,
	exact.Sum:   0.08,
	exact.Avg:   0.07,
}

// accuracyRanges is the query workload: windows of varying width across
// the ss_sold_date_sk domain (0..1823), from ~2% to the full domain.
var accuracyRanges = [][2]float64{
	{100, 140},
	{400, 520},
	{850, 1000},
	{200, 900},
	{1200, 1800},
	{0, 1823},
}

// sketchLifecycles builds one engine per sketch lifecycle the accuracy
// harness must hold to the same bounds: fresh (sketch built over the full
// table), absorbed (built over the first half, second half folded in via
// Append) and reloaded (fresh engine gob-round-tripped through
// SaveModels/LoadModels). rows is split at len(rows)/2 for the absorbed
// case; create runs the CREATE SKETCH statement against an engine whose
// table holds the given rows.
func sketchLifecycles(t *testing.T, full *dbest.Table, firstHalf *dbest.Table, appendRows [][]interface{}, create string) map[string]*dbest.Engine {
	t.Helper()
	mk := func(tb *dbest.Table) *dbest.Engine {
		eng := dbest.New(nil)
		if err := eng.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Exec(create); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	fresh := mk(full)

	absorbed := mk(firstHalf)
	if _, err := absorbed.Append(firstHalf.Name, appendRows); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sketches.bin")
	if err := fresh.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	reloaded := dbest.New(nil)
	if err := reloaded.RegisterTable(full); err != nil {
		t.Fatal(err)
	}
	if err := reloaded.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	return map[string]*dbest.Engine{"fresh": fresh, "absorbed": absorbed, "reloaded": reloaded}
}

// TestSketchAccuracyRegression holds the sketch estimators to fixed error
// bounds across all three lifecycles: HLL COUNT(DISTINCT) within 2%
// relative error at the default precision, and Count-Min TOP-10 recall of
// at least 0.9 against the exact heavy-hitter set on a skewed column.
func TestSketchAccuracyRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("sketch accuracy harness builds 6 engines; skipped in -short")
	}

	// HLL workload: 60000 distinct values, each appearing twice, laid out
	// so the first half of the rows covers values 0..29999 and the second
	// half 30000..59999 (the absorbed lifecycle appends only novel values).
	const distinct = 60000
	xs := make([]float64, 0, 2*distinct)
	for i := 0; i < distinct; i++ {
		xs = append(xs, float64(i), float64(i))
	}
	full := dbest.NewTable("hd")
	full.AddFloatColumn("x", append([]float64(nil), xs...))
	firstHalf := dbest.NewTable("hd")
	firstHalf.AddFloatColumn("x", append([]float64(nil), xs[:distinct]...))
	appendRows := make([][]interface{}, distinct)
	for i, v := range xs[distinct:] {
		appendRows[i] = []interface{}{v}
	}
	for name, eng := range sketchLifecycles(t, full, firstHalf, appendRows,
		"CREATE SKETCH xd ON hd(x) TYPE HLL PRECISION 14") {
		res, err := eng.Query("SELECT COUNT(DISTINCT x) FROM hd")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Source != "sketch" {
			t.Fatalf("%s answered by %q, want sketch", name, res.Source)
		}
		re := relErr(res.Aggregates[0].Value, distinct)
		if re > 0.02 {
			t.Errorf("%s HLL: rel err %.4f exceeds bound 0.02 (got %v, want %d)",
				name, re, res.Aggregates[0].Value, distinct)
		}
		t.Logf("%s HLL COUNT(DISTINCT): rel err %.4f (bound 0.02)", name, re)
	}

	// TOP-K workload: 50 string values with harmonic skew — value v
	// appears 6000/(v+1) times, so the exact top-10 is v0..v9 by a wide
	// margin. Rows are laid down value-major; the absorbed lifecycle gets
	// every second occurrence via Append.
	var all, head []string
	var tail [][]interface{}
	for v := 0; v < 50; v++ {
		s := fmt.Sprintf("v%02d", v)
		n := 6000 / (v + 1)
		for i := 0; i < n; i++ {
			all = append(all, s)
			if i%2 == 0 {
				head = append(head, s)
			} else {
				tail = append(tail, []interface{}{s})
			}
		}
	}
	fullS := dbest.NewTable("skew")
	fullS.AddStringColumn("s", all)
	halfS := dbest.NewTable("skew")
	halfS.AddStringColumn("s", head)
	wantTop, err := exact.TopValues(fullS, "s", 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, eng := range sketchLifecycles(t, fullS, halfS, tail,
		"CREATE SKETCH st ON skew(s) TYPE TOPK K 10") {
		res, err := eng.Query("SELECT TOP 10(s) FROM skew")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Source != "sketch" {
			t.Fatalf("%s answered by %q, want sketch", name, res.Source)
		}
		exactSet := make(map[string]bool, len(wantTop))
		for _, e := range wantTop {
			exactSet[e.Value] = true
		}
		hits := 0
		for _, e := range res.Aggregates[0].TopK {
			if exactSet[e.Value] {
				hits++
			}
		}
		recall := float64(hits) / float64(len(wantTop))
		if recall < 0.9 {
			t.Errorf("%s TOP-10 recall %.2f below bound 0.9 (got %v, want %v)",
				name, recall, res.Aggregates[0].TopK, wantTop)
		}
		t.Logf("%s TOP-10 recall: %.2f (bound 0.9)", name, recall)
	}
}

// TestCICoverageRegression holds the per-answer error bounds to their
// contract: every model-path answer carries a predicted relative error and
// a confidence interval, and the exact answer lands inside that interval
// for at least 90% of spans. Coverage is checked per configuration —
// unsharded, sharded K=4 and K=16, GROUP BY, and a model retrained by the
// background refresher after ingest — so a regression in the bootstrap
// fit, the shard CI merge, or the bounds' survival across retrains fails
// here before it ships.
func TestCICoverageRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-coverage harness trains 5 model configurations; skipped in -short")
	}
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Seed: 42})
	opts := &dbest.TrainOptions{SampleSize: 4000, Seed: 42}
	aggs := []struct {
		af  exact.AggFunc
		sql string
	}{
		{exact.Count, "COUNT(*)"},
		{exact.Sum, "SUM(ss_sales_price)"},
		{exact.Avg, "AVG(ss_sales_price)"},
	}

	// checkCoverage runs every aggregate over every accuracy window against
	// the given engine, asserting the bounds contract on each answer and
	// the >= 90% coverage floor across the whole span set.
	checkCoverage := func(t *testing.T, eng *dbest.Engine, truth *dbest.Table) {
		t.Helper()
		covered, total := 0, 0
		for _, agg := range aggs {
			for _, r := range accuracyRanges {
				sql := fmt.Sprintf("SELECT %s FROM store_sales WHERE ss_sold_date_sk BETWEEN %g AND %g",
					agg.sql, r[0], r[1])
				res, err := eng.Query(sql)
				if err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
				if res.Source != "model" {
					t.Fatalf("%s answered by %q, want model", sql, res.Source)
				}
				a := res.Aggregates[0]
				if a.PredRelErr <= 0 {
					t.Fatalf("%s: PredRelErr = %v, want > 0 on the model path", sql, a.PredRelErr)
				}
				if a.CI[0] > a.Value || a.Value > a.CI[1] {
					t.Fatalf("%s: value %v outside its own CI [%v, %v]", sql, a.Value, a.CI[0], a.CI[1])
				}
				want := exactAnswer(t, truth, agg.af, "ss_sales_price", "ss_sold_date_sk", r[0], r[1])
				total++
				if a.CI[0] <= want && want <= a.CI[1] {
					covered++
				} else {
					t.Logf("miss: %s over [%g,%g]: want %v outside CI [%v, %v] (±%.1f%%)",
						agg.sql, r[0], r[1], want, a.CI[0], a.CI[1], a.PredRelErr*100)
				}
			}
		}
		cov := float64(covered) / float64(total)
		t.Logf("CI coverage: %d/%d spans (%.0f%%)", covered, total, cov*100)
		if cov < 0.9 {
			t.Errorf("CI coverage %.2f below 0.90 floor (%d/%d spans)", cov, covered, total)
		}
	}

	t.Run("unsharded", func(t *testing.T) {
		eng := dbest.New(nil)
		if err := eng.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", opts); err != nil {
			t.Fatal(err)
		}
		checkCoverage(t, eng, tb)
	})
	for _, k := range []int{4, 16} {
		k := k
		t.Run(fmt.Sprintf("sharded-k%d", k), func(t *testing.T) {
			eng := dbest.New(nil)
			if err := eng.RegisterTable(tb); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", k, opts); err != nil {
				t.Fatal(err)
			}
			checkCoverage(t, eng, tb)
		})
	}

	t.Run("groupby", func(t *testing.T) {
		gtb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Stores: 8, Seed: 42})
		eng := dbest.New(nil)
		if err := eng.RegisterTable(gtb); err != nil {
			t.Fatal(err)
		}
		gopts := *opts
		gopts.GroupBy = "ss_store_sk"
		if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", &gopts); err != nil {
			t.Fatal(err)
		}
		covered, total := 0, 0
		for _, r := range accuracyRanges {
			sql := fmt.Sprintf("SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN %g AND %g GROUP BY ss_store_sk",
				r[0], r[1])
			res, err := eng.Query(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			if res.Source != "model" {
				t.Fatalf("%s answered by %q, want model", sql, res.Source)
			}
			want, err := exact.Query(gtb, exact.Request{AF: exact.Sum, Y: "ss_sales_price",
				Group:      "ss_store_sk",
				Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: r[0], Ub: r[1]}}})
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range res.Aggregates[0].Groups {
				if g.PredRelErr <= 0 {
					t.Fatalf("group %d over [%g,%g]: PredRelErr = %v, want > 0", g.Group, r[0], r[1], g.PredRelErr)
				}
				total++
				if tv := want.Groups[g.Group]; g.CI[0] <= tv && tv <= g.CI[1] {
					covered++
				} else {
					t.Logf("miss: group %d over [%g,%g]: want %v outside CI [%v, %v]",
						g.Group, r[0], r[1], tv, g.CI[0], g.CI[1])
				}
			}
		}
		cov := float64(covered) / float64(total)
		t.Logf("GROUP BY CI coverage: %d/%d group spans (%.0f%%)", covered, total, cov*100)
		if cov < 0.9 {
			t.Errorf("GROUP BY CI coverage %.2f below 0.90 floor (%d/%d)", cov, covered, total)
		}
	})

	t.Run("post-refresh", func(t *testing.T) {
		half := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Seed: 42})
		rest := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Seed: 43})
		eng := dbest.New(nil)
		if err := eng.RegisterTable(half); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", opts); err != nil {
			t.Fatal(err)
		}
		if err := eng.StartRefresher(&dbest.RefreshOptions{
			Interval:  5 * time.Millisecond,
			Threshold: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		defer eng.StopRefresher()
		if _, err := eng.AppendTable("store_sales", rest); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for eng.RefreshStats().Refreshes == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("background refresher never retrained; staleness: %+v", eng.ModelStaleness())
			}
			time.Sleep(2 * time.Millisecond)
		}
		// The retrained model's bounds must hold against the doubled table.
		checkCoverage(t, eng, eng.Table("store_sales"))
	})
}

func TestAccuracyRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy harness trains 4 model configurations; skipped in -short")
	}
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Seed: 42})

	type config struct {
		name   string
		shards int // 0 = plain (unsharded) Train
	}
	configs := []config{
		{"unsharded", 0},
		{"sharded-k1", 1},
		{"sharded-k4", 4},
		{"sharded-k16", 16},
	}
	aggs := []struct {
		af  exact.AggFunc
		sql string
	}{
		{exact.Count, "COUNT(*)"},
		{exact.Sum, "SUM(ss_sales_price)"},
		{exact.Avg, "AVG(ss_sales_price)"},
	}

	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			eng := dbest.New(nil)
			if err := eng.RegisterTable(tb); err != nil {
				t.Fatal(err)
			}
			opts := &dbest.TrainOptions{SampleSize: 4000, Seed: 42}
			var err error
			if cfg.shards == 0 {
				_, err = eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price", opts)
			} else {
				_, err = eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", cfg.shards, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, agg := range aggs {
				worst := 0.0
				for _, r := range accuracyRanges {
					sql := fmt.Sprintf("SELECT %s FROM store_sales WHERE ss_sold_date_sk BETWEEN %g AND %g",
						agg.sql, r[0], r[1])
					res, err := eng.Query(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if res.Source != "model" {
						t.Fatalf("%s answered by %q, want model", sql, res.Source)
					}
					want := exactAnswer(t, tb, agg.af, "ss_sales_price", "ss_sold_date_sk", r[0], r[1])
					re := relErr(res.Aggregates[0].Value, want)
					if re > worst {
						worst = re
					}
					if re > accuracyBounds[agg.af] {
						t.Errorf("%s over [%g,%g]: rel err %.4f exceeds bound %.2f (got %v, want %v)",
							agg.sql, r[0], r[1], re, accuracyBounds[agg.af],
							res.Aggregates[0].Value, want)
					}
				}
				t.Logf("%s %s: worst rel err %.4f (bound %.2f)", cfg.name, agg.sql, worst, accuracyBounds[agg.af])
			}
		})
	}
}
